"""Across-FTL read routines: direct read and merged read (paper §3.3.2)."""

import pytest

from conftest import build_ftl


@pytest.fixture
def ftl_pair(tiny_cfg):
    return build_ftl("across", tiny_cfg)


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


class TestDirectRead:
    """Paper Fig. 7a: the request fits inside the across area."""

    def test_single_flash_read(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))  # area 2056..2068
        before = svc.counters.data_reads
        t, found = ftl.read(2060, 8, 0.0)  # within area, spans both lpns
        assert svc.counters.data_reads - before == 1  # ONE page read
        assert ftl.across_stats.direct_reads == 1
        assert all(found[s] == 1 for s in range(2060, 2068))

    def test_conventional_ftl_needs_two(self, tiny_cfg):
        """The comparison the paper makes: same read costs two flash
        reads under the baseline scheme."""
        svc, ftl = build_ftl("ftl", tiny_cfg)
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        before = svc.counters.data_reads
        ftl.read(2060, 8, 0.0)
        assert svc.counters.data_reads - before == 2

    def test_read_subset_one_side(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        before = svc.counters.data_reads
        _, found = ftl.read(2056, 4, 0.0)  # only the lpn-128 part
        assert svc.counters.data_reads - before == 1
        assert len(found) == 4

    def test_exact_area_read(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        _, found = ftl.read(2056, 12, 0.0)
        assert ftl.across_stats.direct_reads == 1
        assert len(found) == 12


class TestMergedRead:
    """Paper Fig. 7b: the request exceeds the across area."""

    def test_reads_area_and_normal_pages(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2048, 16, 0.0, stamps_for(2048, 16, 1))
        ftl.write(2064, 16, 0.0, stamps_for(2064, 16, 2))
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 3))  # area
        before = svc.counters.data_reads
        _, found = ftl.read(2052, 20, 0.0)  # 2052..2072 exceeds the area
        # needs: area page + both normal pages
        assert svc.counters.data_reads - before == 3
        assert ftl.across_stats.merged_read_requests == 1
        assert svc.counters.merged_reads == 2
        for s in range(2052, 2056):
            assert found[s] == 1
        for s in range(2056, 2068):
            assert found[s] == 3
        for s in range(2068, 2072):
            assert found[s] == 2

    def test_merged_read_counter_only_for_area_requests(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 32, 0.0, stamps_for(0, 32, 1))
        ftl.read(8, 16, 0.0)  # across-page read, but no area involved
        assert ftl.across_stats.merged_read_requests == 0
        assert svc.counters.merged_reads == 0

    def test_read_beyond_written(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        _, found = ftl.read(2048, 32, 0.0)
        # only the area's sectors exist
        assert set(found) == set(range(2056, 2068))
        assert ftl.across_stats.direct_reads == 1  # no normal page read


class TestReadAfterUpdates:
    def test_read_after_amerge(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        ftl.write(2060, 12, 0.0, stamps_for(2060, 12, 2))
        before = svc.counters.data_reads
        _, found = ftl.read(2056, 16, 0.0)
        assert svc.counters.data_reads - before == 1  # still one page
        assert found[2056] == 1 and found[2071] == 2

    def test_read_after_rollback(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        ftl.write(2060, 16, 0.0, stamps_for(2060, 16, 2))  # rollback
        before = svc.counters.data_reads
        _, found = ftl.read(2056, 20, 0.0)
        assert svc.counters.data_reads - before == 2  # two normal pages
        assert ftl.across_stats.direct_reads == 0

    def test_unwritten_read_zero_cost(self, ftl_pair):
        svc, ftl = ftl_pair
        t, found = ftl.read(4096, 32, 7.0)
        assert t == 7.0 and found == {}


class TestReadLatency:
    def test_direct_read_latency_one_page(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(2056, 12, 0.0)
        t, _ = ftl.read(2058, 8, 100.0)
        assert t == pytest.approx(100.075)

    def test_parallel_page_reads(self, ftl_pair):
        svc, ftl = ftl_pair
        # two pages land on different planes/chips thanks to RR allocation
        ftl.write(2048, 32, 0.0, stamps_for(2048, 32, 1))
        t, _ = ftl.read(2048, 32, 100.0)
        assert t == pytest.approx(100.075)  # overlapped, not serialized
