"""Experiment runner and context memoisation."""

import pytest

from repro.config import SimConfig, SSDConfig
from repro.experiments.runner import ExperimentContext, compare_schemes, run_trace
from repro.experiments.workloads import TABLE2_SPECS, lun_specs, lun_traces


@pytest.fixture(scope="module")
def micro_ctx():
    """A very small context so figure sweeps run in seconds."""
    cfg = SSDConfig(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=32,
        pages_per_block=16,
        page_size_bytes=8 * 1024,
        write_buffer_bytes=512 * 1024,
    )
    return ExperimentContext(
        cfg=cfg,
        sim_cfg=SimConfig(aged_used=0.6, aged_valid=0.3),
        scale=0.002,
    )


class TestRunTrace:
    def test_fresh_device_per_run(self, small_trace, tiny_cfg):
        a = run_trace("ftl", small_trace, tiny_cfg)
        b = run_trace("ftl", small_trace, tiny_cfg)
        assert a.counters.total_writes == b.counters.total_writes
        assert a.erase_count == b.erase_count

    def test_unknown_scheme(self, small_trace, tiny_cfg):
        with pytest.raises(ValueError):
            run_trace("bogus", small_trace, tiny_cfg)

    def test_compare_schemes(self, small_trace, tiny_cfg):
        reps = compare_schemes(small_trace, tiny_cfg)
        assert set(reps) == {"ftl", "mrsm", "across"}
        for s, r in reps.items():
            assert r.scheme == s
            assert r.requests == len(small_trace)


class TestWorkloads:
    def test_table2_rows(self):
        assert len(TABLE2_SPECS) == 6
        assert TABLE2_SPECS[0].name == "lun1"
        assert TABLE2_SPECS[5].across_ratio == pytest.approx(0.275)

    def test_lun_specs_scaled(self, tiny_cfg):
        specs = lun_specs(tiny_cfg, scale=0.01)
        assert len(specs) == 6
        assert specs[0].requests == int(749_806 * 0.01)
        assert specs[0].footprint_sectors <= tiny_cfg.logical_sectors

    def test_lun_traces_generate(self, tiny_cfg):
        traces = lun_traces(tiny_cfg, scale=0.001)
        assert len(traces) == 6
        assert all(len(t) > 0 for t in traces)
        assert {t.name for t in traces} == {f"lun{i}" for i in range(1, 7)}


class TestContext:
    def test_memoisation(self, micro_ctx):
        a = micro_ctx.run("lun1", "ftl")
        b = micro_ctx.run("lun1", "ftl")
        assert a is b  # cached, not re-simulated

    def test_distinct_schemes_distinct_runs(self, micro_ctx):
        a = micro_ctx.run("lun1", "ftl")
        b = micro_ctx.run("lun1", "across")
        assert a is not b

    def test_page_size_key(self, micro_ctx):
        a = micro_ctx.run("lun1", "ftl")
        b = micro_ctx.run("lun1", "ftl", page_size_bytes=4 * 1024)
        assert a is not b

    def test_trace_cached(self, micro_ctx):
        t1 = micro_ctx.lun_trace("lun2")
        t2 = micro_ctx.lun_trace("lun2")
        assert t1 is t2

    def test_unknown_lun(self, micro_ctx):
        with pytest.raises(KeyError):
            micro_ctx.lun_trace("lun9")

    def test_config_for_page(self, micro_ctx):
        cfg = micro_ctx.config_for_page(4 * 1024)
        assert cfg.page_size_bytes == 4 * 1024
        assert micro_ctx.config_for_page(8 * 1024) is micro_ctx.cfg

    def test_sweep_covers_all_luns_and_schemes(self, micro_ctx):
        out = micro_ctx.sweep(schemes=("ftl", "across"))
        assert set(out) == {f"lun{i}" for i in range(1, 7)}
        for name, per_scheme in out.items():
            assert set(per_scheme) == {"ftl", "across"}
            for rep in per_scheme.values():
                assert rep.requests == len(micro_ctx.lun_trace(name))

    def test_save_results(self, micro_ctx, tmp_path):
        import json

        micro_ctx.run("lun1", "ftl")
        micro_ctx.run("lun1", "across")
        n = micro_ctx.save_results(tmp_path / "archive")
        assert n >= 2
        index = json.loads((tmp_path / "archive" / "index.json").read_text())
        assert {e["scheme"] for e in index} >= {"ftl", "across"}
        first = json.loads(
            (tmp_path / "archive" / index[0]["file"]).read_text()
        )
        assert first["counters"]["total_writes"] > 0
