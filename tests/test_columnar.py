"""Columnar trace decoding: scalar/batched equivalence properties.

The batch pipeline's decode stage (:mod:`repro.traces.columnar`) must
describe *exactly* the request stream the scalar reader yields — for
synthetic, blktrace and MSR traces alike, TRIM rows and truncated tail
segments included.  These properties pin that equivalence; the batch
differential-replay leg (``repro check --batch``) pins the rest of the
pipeline downstream of it.
"""

import numpy as np
import pytest

from repro.traces.blktrace import load_blktrace
from repro.traces.columnar import (
    decode_segments,
    request_digest,
    request_digest_scalar,
)
from repro.traces.model import OP_READ, OP_TRIM, OP_WRITE, Trace
from repro.traces.msr import load_msr
from repro.traces.synthetic import SyntheticSpec, VDIWorkloadGenerator

BLKTRACE_SAMPLE = """\
8,0    3       11     0.009507758   697  Q   W 223490 + 8 [kworker]
8,0    1       13     0.010100000   698  Q   R 1024 + 16 [fio]
8,0    1       14     0.010200000   698  Q  RS 2048 + 8 [fio]
8,0    1       15     0.011000000   698  Q   D 4096 + 64 [fstrim]
8,0    1       16     0.012000000   698  Q   R 8191 + 3 [fio]
CPU3 (8,0):
 Reads Queued:           2,        12KiB
"""

MSR_SAMPLE = """\
128166372003061629,usr,0,Read,0,8192,0
128166372016863437,usr,0,Write,12288,4096,0
128166372026462469,usr,0,Read,4608,1024,0
128166372033568563,usr,0,Write,65536,16384,0
128166372043652106,usr,0,Read,65536,512,0
"""


def synthetic_trace(n=300, seed=11):
    spec = SyntheticSpec(
        name="col-prop",
        requests=n,
        write_ratio=0.5,
        across_ratio=0.2,
        mean_write_kb=8.0,
        footprint_sectors=16 * 4096,
        seed=seed,
        small_unaligned=0.4,
    )
    return VDIWorkloadGenerator(spec).generate()


def with_trims(trace, every=7):
    """Flip every ``every``-th write to a TRIM (same extents)."""
    ops = trace.ops.copy()
    writes = np.nonzero(ops == OP_WRITE)[0]
    ops[writes[::every]] = OP_TRIM
    return Trace(trace.name, trace.times, ops, trace.offsets, trace.sizes)


@pytest.fixture(scope="module")
def traces(tmp_path_factory):
    """One trace per source format, TRIM rows included where the
    format carries them."""
    d = tmp_path_factory.mktemp("columnar")
    blk = d / "trace.txt"
    blk.write_text(BLKTRACE_SAMPLE)
    msr = d / "trace.csv"
    msr.write_text(MSR_SAMPLE)
    return {
        "synthetic": with_trims(synthetic_trace()),
        "blktrace": load_blktrace(blk),
        "msr": load_msr(msr),
    }


FORMATS = ("synthetic", "blktrace", "msr")


class TestDecodeSegments:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("max_batch", (1, 7, 512))
    def test_tuples_match_scalar_reader(self, traces, fmt, max_batch):
        trace = traces[fmt]
        scalar = [(op, off, sz, t) for op, off, sz, t in trace]
        cols = []
        for seg in decode_segments(trace, max_batch=max_batch, spp=16):
            cols.extend(seg.request_tuples())
        assert cols == scalar

    @pytest.mark.parametrize("fmt", FORMATS)
    def test_segment_bounds_cover_trace(self, traces, fmt):
        trace = traces[fmt]
        # 7 never divides these lengths: the tail segment is shorter
        segs = list(decode_segments(trace, max_batch=7, spp=16))
        assert [s.start for s in segs] == list(range(0, len(trace), 7))
        assert sum(len(s) for s in segs) == len(trace)
        assert len(segs[-1]) == len(trace) - segs[-1].start <= 7

    def test_trim_rows_survive_decode(self, traces):
        for fmt in ("synthetic", "blktrace"):
            trace = traces[fmt]
            assert (trace.ops == OP_TRIM).any()  # fixture sanity
            decoded_ops = np.concatenate([
                s.ops for s in decode_segments(trace, max_batch=7, spp=16)
            ])
            np.testing.assert_array_equal(decoded_ops, trace.ops)

    def test_derived_geometry_matches_per_request_math(self, traces):
        spp = 16
        trace = traces["synthetic"]
        for seg in decode_segments(trace, max_batch=64, spp=spp):
            for k, (op, off, sz, t) in enumerate(seg.request_tuples()):
                lo = off // spp
                hi = (off + sz - 1) // spp
                assert seg.lpn_lo[k] == lo
                assert seg.lpn_hi[k] == hi
                assert seg.pieces[k] == hi - lo + 1
                # paper §2.1: at most one page of data spanning a
                # page boundary
                assert seg.across[k] == (sz <= spp and hi == lo + 1)

    def test_rejects_bad_arguments(self, traces):
        trace = traces["blktrace"]
        with pytest.raises(ValueError):
            list(decode_segments(trace, max_batch=0, spp=16))
        with pytest.raises(ValueError):
            list(decode_segments(trace, max_batch=512, spp=0))


class TestRequestDigest:
    @pytest.mark.parametrize("fmt", FORMATS)
    @pytest.mark.parametrize("max_batch", (1, 7, 512))
    def test_columnar_digest_equals_scalar(self, traces, fmt, max_batch):
        trace = traces[fmt]
        assert (
            request_digest(trace, max_batch=max_batch)
            == request_digest_scalar(trace)
        )

    def test_digest_invariant_to_batch_size(self, traces):
        trace = traces["synthetic"]
        digests = {
            request_digest(trace, max_batch=mb) for mb in (1, 3, 100, 4096)
        }
        assert len(digests) == 1

    def test_digest_sensitive_to_any_column(self, traces):
        base = traces["msr"]
        ref = request_digest(base)
        mutants = [
            Trace(base.name, base.times + 1.0, base.ops, base.offsets,
                  base.sizes),
            Trace(base.name, base.times, base.ops, base.offsets + 1,
                  base.sizes),
            Trace(base.name, base.times, base.ops, base.offsets,
                  base.sizes + 1),
        ]
        flipped = base.ops.copy()
        flipped[0] = OP_WRITE if flipped[0] == OP_READ else OP_READ
        mutants.append(
            Trace(base.name, base.times, flipped, base.offsets, base.sizes)
        )
        for m in mutants:
            assert request_digest(m) != ref

    def test_pinned_canonical_encoding(self):
        """The canonical row encoding (op u8, offset i64, size i64,
        time f64, little-endian) is part of the equivalence contract —
        a layout change must fail loudly, not re-baseline silently."""
        trace = Trace(
            "pinned",
            np.array([0.0, 1.5, 2.25]),
            np.array([OP_WRITE, OP_READ, OP_TRIM], np.uint8),
            np.array([0, 16, 32], np.int64),
            np.array([16, 8, 64], np.int64),
        )
        want = (
            "02f201b808727ea1c066f1d4c625be26"
            "4a5433012278e10cae8682b445fb2ae0"
        )
        assert request_digest(trace) == want
        assert request_digest_scalar(trace) == want
