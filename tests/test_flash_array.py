"""NAND protocol enforcement and block bookkeeping (repro.flash.array)."""

import pytest

from repro.config import SSDConfig
from repro.errors import FlashProtocolError, OutOfSpaceError
from repro.flash.array import PAGE_FREE, PAGE_INVALID, PAGE_VALID, FlashArray
from repro.geometry import FlashGeometry


@pytest.fixture
def arr():
    return FlashArray(FlashGeometry(SSDConfig.tiny()))


class TestProgram:
    def test_program_marks_valid(self, arr):
        arr.program(0, "meta")
        assert arr.state[0] == PAGE_VALID
        assert arr.read(0) == "meta"

    def test_sequential_program_required(self, arr):
        arr.program(0, "a")
        with pytest.raises(FlashProtocolError):
            arr.program(2, "skip")  # page 1 must come first

    def test_reprogram_rejected(self, arr):
        arr.program(0, "a")
        with pytest.raises(FlashProtocolError):
            arr.program(0, "again")

    def test_valid_count_tracks(self, arr):
        for p in range(4):
            arr.program(p, p)
        assert arr.valid_count[0] == 4

    def test_block_full(self, arr):
        ppb = arr.geom.pages_per_block
        for p in range(ppb):
            arr.program(p, p)
        assert arr.block_full(0)


class TestInvalidate:
    def test_invalidate(self, arr):
        arr.program(0, "a")
        arr.invalidate(0)
        assert arr.state[0] == PAGE_INVALID
        assert arr.valid_count[0] == 0

    def test_read_invalid_rejected(self, arr):
        arr.program(0, "a")
        arr.invalidate(0)
        with pytest.raises(FlashProtocolError):
            arr.read(0)

    def test_double_invalidate_rejected(self, arr):
        arr.program(0, "a")
        arr.invalidate(0)
        with pytest.raises(FlashProtocolError):
            arr.invalidate(0)

    def test_read_free_rejected(self, arr):
        with pytest.raises(FlashProtocolError):
            arr.read(0)

    def test_meta_dropped_on_invalidate(self, arr):
        arr.program(0, "a")
        arr.invalidate(0)
        assert 0 not in arr._meta


class TestErase:
    def test_erase_requires_no_valid(self, arr):
        arr.program(0, "a")
        with pytest.raises(FlashProtocolError):
            arr.erase(0)

    def test_erase_resets_block(self, arr):
        arr.program(0, "a")
        arr.invalidate(0)
        free_before = arr.free_block_count(0)
        arr.erase(0)
        assert arr.state[0] == PAGE_FREE
        assert arr.write_ptr[0] == 0
        assert arr.erase_count[0] == 1
        assert arr.free_block_count(0) == free_before + 1

    def test_erased_block_reprogrammable(self, arr):
        arr.program(0, "a")
        arr.invalidate(0)
        arr.erase(0)
        arr.program(0, "b")
        assert arr.read(0) == "b"

    def test_wear_accumulates(self, arr):
        for _ in range(3):
            arr.program(0, "x")
            arr.invalidate(0)
            arr.erase(0)
        assert arr.erase_count[0] == 3
        assert arr.total_erases == 3


class TestFreePool:
    def test_initial_pool_full(self, arr):
        assert arr.free_block_count(0) == arr.geom.blocks_per_plane
        assert arr.free_fraction(0) == 1.0

    def test_pop_free_block(self, arr):
        b = arr.pop_free_block(0)
        assert arr.geom.plane_of_block(b) == 0
        assert arr.free_block_count(0) == arr.geom.blocks_per_plane - 1

    def test_pool_exhaustion(self, arr):
        for _ in range(arr.geom.blocks_per_plane):
            arr.pop_free_block(1)
        with pytest.raises(OutOfSpaceError):
            arr.pop_free_block(1)

    def test_total_free_blocks(self, arr):
        total = arr.total_free_blocks()
        arr.pop_free_block(0)
        assert arr.total_free_blocks() == total - 1


class TestInvariants:
    def test_clean_state_passes(self, arr):
        arr.check_invariants()

    def test_after_activity_passes(self, arr):
        for p in range(10):
            arr.program(p, p)
        for p in range(0, 10, 2):
            arr.invalidate(p)
        arr.check_invariants()

    def test_valid_ppns_iterates_only_valid(self, arr):
        for p in range(8):
            arr.program(p, p)
        arr.invalidate(3)
        arr.invalidate(5)
        assert list(arr.valid_ppns(0)) == [0, 1, 2, 4, 6, 7]

    def test_total_valid_pages(self, arr):
        for p in range(5):
            arr.program(p, p)
        assert arr.total_valid_pages == 5
