"""Greedy garbage collection, exercised through the baseline FTL."""

import pytest

from repro.flash.service import FlashService
from repro.ftl.pagemap import PageMapFTL


@pytest.fixture
def setup(micro_cfg):
    svc = FlashService(micro_cfg)
    ftl = PageMapFTL(svc)
    return svc, ftl


def fill_device(ftl, svc, fraction=0.8, start_lpn=0):
    """Write full pages until `fraction` of physical pages programmed."""
    spp = ftl.spp
    target = int(svc.geom.num_pages * fraction)
    lpn = start_lpn
    writes = 0
    while svc.counters.total_writes < target:
        ftl.write((lpn % ftl.logical_pages) * spp, spp, 0.0)
        lpn += 1
        writes += 1
    return writes


class TestVictimSelection:
    def test_no_full_blocks_no_victim(self, setup):
        svc, ftl = setup
        ftl.write(0, ftl.spp, 0.0)
        assert ftl.gc.select_victim(0) is None

    def test_prefers_fewest_valid(self, setup):
        svc, ftl = setup
        spp = ftl.spp
        ppb = svc.geom.pages_per_block
        # fill two blocks in plane 0 via direct allocation
        for i in range(2 * ppb):
            ppn = ftl.allocator.allocate_in_plane(0)
            from repro.ftl.meta import DataPageMeta

            svc.array.program(ppn, DataPageMeta(i))
            ftl.pmt[i] = ppn
            ftl.pmt_mask[i] = (1 << spp) - 1
        b0 = svc.geom.block_of_ppn(ftl.pmt[0])
        # invalidate most of block b0
        for i in range(ppb - 1):
            svc.array.invalidate(int(ftl.pmt[i]))
            ftl.pmt[i] = -1
            ftl.pmt_mask[i] = 0
        assert ftl.gc.select_victim(0) == b0

    def test_skips_fully_valid(self, setup):
        svc, ftl = setup
        spp = ftl.spp
        ppb = svc.geom.pages_per_block
        from repro.ftl.meta import DataPageMeta

        for i in range(ppb):
            ppn = ftl.allocator.allocate_in_plane(0)
            svc.array.program(ppn, DataPageMeta(i))
            ftl.pmt[i] = ppn
            ftl.pmt_mask[i] = (1 << spp) - 1
        # the only full block is entirely valid: no reclaimable space
        assert ftl.gc.select_victim(0) is None


class TestCollection:
    def test_gc_triggers_under_pressure(self, setup):
        svc, ftl = setup
        fill_device(ftl, svc, fraction=0.95)
        assert ftl.gc.collections > 0
        assert svc.counters.erases > 0

    def test_device_survives_sustained_overwrite(self, setup):
        svc, ftl = setup
        spp = ftl.spp
        hot = ftl.logical_pages // 4
        for i in range(3 * svc.geom.num_pages):
            ftl.write((i % hot) * spp, spp, 0.0)
        # the flash never deadlocks and mappings stay consistent
        ftl.check_invariants()
        svc.array.check_invariants()

    def test_gc_preserves_data(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = PageMapFTL(svc, track_payload=True)
        spp = ftl.spp
        hot = max(4, ftl.logical_pages // 8)
        version = {}
        v = 0
        for i in range(3 * svc.geom.num_pages):
            lpn = i % hot
            v += 1
            stamps = {s: v for s in range(lpn * spp, (lpn + 1) * spp)}
            version[lpn] = v
            ftl.write(lpn * spp, spp, 0.0, stamps)
        assert svc.counters.erases > 0
        for lpn, expect in version.items():
            _, found = ftl.read(lpn * spp, spp, 0.0)
            assert all(
                found[s] == expect for s in range(lpn * spp, (lpn + 1) * spp)
            )

    def test_migrated_pages_counted(self, setup):
        svc, ftl = setup
        spp = ftl.spp
        hot = ftl.logical_pages // 4
        for i in range(3 * svc.geom.num_pages):
            ftl.write((i % hot) * spp, spp, 0.0)
        # greedy selection under uniform overwrite finds mostly-invalid
        # victims, so migration stays well below one device's worth
        assert 0 <= ftl.gc.migrated_pages < svc.geom.num_pages

    def test_restore_hysteresis(self, setup):
        svc, ftl = setup
        fill_device(ftl, svc, fraction=0.95)
        # after GC ran, every plane should be at or above the trigger
        # threshold (restore may not be reachable on a tiny device)
        fractions = [svc.free_fraction(p) for p in range(svc.num_planes)]
        assert all(f >= 0.0 for f in fractions)
        assert ftl.gc.collections > 0


class TestGCReentrancy:
    def test_no_recursive_collection(self, setup):
        svc, ftl = setup
        # _collecting guard: calling maybe_collect inside itself is a no-op
        ftl.gc._collecting = True
        t = ftl.gc.maybe_collect(0, 5.0)
        assert t == 5.0
        ftl.gc._collecting = False
