"""Latency attribution (repro.obs.attribution): the frontier ledger,
the phase-conservation law on the pinned bench scenarios, and the
sketch accuracy bound against exact numpy percentiles."""

import numpy as np
import pytest

from conftest import build_ftl
from repro.config import SimConfig, SSDConfig
from repro.experiments.benchgate import scenarios
from repro.experiments.runner import run_trace
from repro.metrics.report import SimulationReport
from repro.metrics.sketch import LogHistogram
from repro.obs.attribution import PHASES, REQUEST_CLASSES, AttributionRecorder


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


# ----------------------------------------------------------------------
# recorder unit behaviour
# ----------------------------------------------------------------------
class TestRecorderLedger:
    def test_queue_phase_from_delayed_start(self):
        r = AttributionRecorder()
        r.begin(arrival=10.0, start=12.5)
        phases = r.complete("read_normal", 2.5)
        assert phases == {"queue": pytest.approx(2.5)}

    def test_single_op_segments(self):
        r = AttributionRecorder()
        r.begin(0.0, 0.0)
        # read issued at 0, starts immediately, cell 0.05, bus to 0.07
        r.record(0, 0.0, 0.0, (("flash_read", 0.05), ("bus_xfer", 0.07)))
        phases = r.complete("read_normal", 0.07)
        assert phases["flash_read"] == pytest.approx(0.05)
        assert phases["bus_xfer"] == pytest.approx(0.02)

    def test_wait_split_against_background(self):
        r = AttributionRecorder()
        r.begin(0.0, 0.0)
        r.note_background(3, 1.0)  # chip 3 busy with GC until t=1
        # op issued at 0 but chip free only at 1.5: 1.0 of the wait is
        # GC, the remaining 0.5 other-host-traffic
        r.record(3, 0.0, 1.5, (("flash_read", 1.55),))
        phases = r.complete("read_normal", 1.55)
        assert phases["gc_stall"] == pytest.approx(1.0)
        assert phases["chip_wait"] == pytest.approx(0.5)
        assert phases["flash_read"] == pytest.approx(0.05)

    def test_off_critical_path_op_costs_nothing(self):
        r = AttributionRecorder()
        r.begin(0.0, 0.0)
        r.record(0, 0.0, 0.0, (("flash_read", 1.0),))
        # a parallel sub-request that finished earlier than the frontier
        r.record(1, 0.0, 0.0, (("flash_read", 0.4),))
        phases = r.complete("read_normal", 1.0)
        assert phases == {"flash_read": pytest.approx(1.0)}

    def test_suspended_ops_only_mark_background(self):
        r = AttributionRecorder()
        r.begin(0.0, 0.0)
        r.suspend()
        r.record(2, 0.0, 0.0, (("flash_read", 5.0),))
        r.resume()
        phases = r.complete("read_normal", 0.0)
        assert phases == {}
        assert r._bg_busy[2] == 5.0

    def test_conservation_by_construction(self):
        """Phases telescope to finish - arrival for any op sequence."""
        rng = np.random.default_rng(11)
        r = AttributionRecorder()
        arrival, start = 5.0, 6.0
        r.begin(arrival, start)
        t = start
        finish = start
        for _ in range(50):
            issue = t
            wait_end = issue + rng.random()
            end = wait_end + rng.random()
            r.record(int(rng.integers(0, 4)), issue, wait_end,
                     (("flash_read", end),))
            finish = max(finish, end)
            if rng.random() < 0.5:
                t = end  # serial dependency
        phases = r.complete("read_normal", finish - arrival)
        assert sum(phases.values()) == pytest.approx(
            finish - arrival, abs=1e-9
        )

    def test_phase_vocabulary_closed(self):
        assert len(set(PHASES)) == len(PHASES)
        assert set(REQUEST_CLASSES) == {
            "read_normal", "read_across", "write_normal", "write_across",
            "trim",
        }


class TestSketchFeeding:
    def test_complete_feeds_class_and_total_sketches(self):
        r = AttributionRecorder()
        r.begin(0.0, 0.0)
        r.record(0, 0.0, 0.0, (("flash_read", 0.05),))
        r.complete("read_across", 0.05)
        assert r.sketches[("read_across", "flash_read")].count == 1
        assert r.sketches[("read_across", "total")].count == 1
        assert r.class_counts == {"read_across": 1}

    def test_summary_round_trips_sketches(self):
        r = AttributionRecorder()
        for lat in (0.1, 0.5, 2.0):
            r.begin(0.0, 0.0)
            r.record(0, 0.0, 0.0, (("flash_read", lat),))
            r.complete("read_normal", lat)
        s = r.summary()
        h = LogHistogram.from_dict(s["sketches"]["read_normal/total"])
        assert h.count == 3
        assert h.total == pytest.approx(2.6)

    def test_mean_phase_breakdown(self):
        s = {
            "requests": {"read_normal": 4},
            "phase_ms": {"read_normal": {"flash_read": 2.0}},
        }
        means = AttributionRecorder.mean_phase_breakdown(s)
        assert means["read_normal"]["flash_read"] == pytest.approx(0.5)


# ----------------------------------------------------------------------
# re-align overhead labels (update / merged reads)
# ----------------------------------------------------------------------
class TestReadLabels:
    def test_merged_read_phase(self):
        # one chip so the merged read's normal-page reads serialize
        # behind the area read and land on the critical path
        cfg = SSDConfig(
            channels=1, chips_per_channel=1, dies_per_chip=1,
            planes_per_die=2, blocks_per_plane=32, pages_per_block=16,
            page_size_bytes=8 * 1024, write_buffer_bytes=0,
        )
        svc, ftl = build_ftl("across", cfg)
        ftl.write(2048, 16, 0.0, stamps_for(2048, 16, 1))
        ftl.write(2064, 16, 0.0, stamps_for(2064, 16, 2))
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 3))  # area
        rec = AttributionRecorder()
        svc.attr = rec
        rec.begin(100.0, 100.0)
        ftl.read(2052, 20, 100.0)  # exceeds the area: merged read
        phases = rec.complete("read_across", 0.0)
        assert phases.get("merged_read", 0.0) > 0.0
        assert svc.counters.merged_reads == 2

    def test_rmw_update_read_phase(self, tiny_cfg):
        svc, ftl = build_ftl("ftl", tiny_cfg)
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        rec = AttributionRecorder()
        svc.attr = rec
        rec.begin(100.0, 100.0)
        ftl.write(0, 4, 100.0, stamps_for(0, 4, 2))  # partial: RMW
        phases = rec.complete("write_normal", 0.0)
        assert phases.get("update_read", 0.0) > 0.0
        assert phases.get("flash_read", 0.0) == 0.0


# ----------------------------------------------------------------------
# full-run conservation + engine wiring
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def bench_attr_reports():
    """All five pinned bench scenarios with attribution and the
    per-request conservation invariant armed (a violation raises)."""
    reports = {}
    for sc in scenarios():
        cfg = sc.make_cfg()
        trace = sc.make_trace(cfg)
        sim_cfg = sc.make_sim_cfg().replace_observability(
            enabled=True, attribution=True
        ).replace_check(enabled=True, every=512)
        reports[sc.name] = run_trace(sc.scheme, trace, cfg, sim_cfg)
    return reports


class TestBenchScenarioConservation:
    def test_all_scenarios_complete_with_invariant_armed(
        self, bench_attr_reports
    ):
        """run_trace raises InvariantViolation on any per-request
        conservation miss, so five reports mean the law held for every
        request of every scenario."""
        assert len(bench_attr_reports) == 5

    def test_aggregate_phase_sums_match_total_latency(
        self, bench_attr_reports
    ):
        for name, rep in bench_attr_reports.items():
            a = rep.attribution
            total = sum(
                ms for totals in a["phase_ms"].values()
                for ms in totals.values()
            )
            assert total == pytest.approx(
                rep.latency.total_ms, abs=1e-6
            ), name

    def test_phases_stay_in_vocabulary(self, bench_attr_reports):
        for rep in bench_attr_reports.values():
            for totals in rep.attribution["phase_ms"].values():
                assert set(totals) <= set(PHASES)

    def test_request_counts_match(self, bench_attr_reports):
        for rep in bench_attr_reports.values():
            assert sum(rep.attribution["requests"].values()) == rep.requests

    def test_media_retry_attributed_under_faults(self, bench_attr_reports):
        rep = bench_attr_reports["faults-stress-ftl"]
        retry_ms = sum(
            t.get("media_retry", 0.0)
            for t in rep.attribution["phase_ms"].values()
        )
        assert rep.counters.read_retries > 0
        assert retry_ms > 0.0


class TestSketchAccuracy:
    @pytest.mark.parametrize(
        "name", ["fig09-lun1-ftl", "fig09-lun1-mrsm", "fig09-lun1-across"]
    )
    def test_tail_quantiles_within_one_bucket(
        self, bench_attr_reports, name
    ):
        """p99/p99.9 from the streaming sketch vs exact numpy
        percentiles of the recorded per-class latency samples: within
        the log-bucket half-width (<= 5% relative)."""
        rep = bench_attr_reports[name]
        samples = rep.latency.to_dict()["samples"]
        sketches = {
            k.split("/")[0]: LogHistogram.from_dict(v)
            for k, v in rep.attribution["sketches"].items()
            if k.endswith("/total")
        }
        for cls, payload in samples.items():
            lats = np.asarray(payload["latencies"])
            if lats.size < 100:
                continue
            h = sketches[cls]
            assert h.count == lats.size
            for q in (0.99, 0.999):
                exact = float(np.quantile(lats, q, method="inverted_cdf"))
                est = h.quantile(q)
                assert abs(est - exact) / exact <= 0.05, (name, cls, q)


class TestReportRoundTrip:
    def test_attribution_survives_to_dict_from_dict(
        self, bench_attr_reports
    ):
        rep = bench_attr_reports["fig09-lun1-ftl"]
        back = SimulationReport.from_dict(rep.to_dict())
        assert back.attribution == rep.attribution

    def test_disabled_run_omits_attribution_key(self, tiny_cfg):
        from repro.traces.synthetic import SyntheticSpec, VDIWorkloadGenerator

        spec = SyntheticSpec(
            "attr-off", 200, 0.5, 0.2, 8.0,
            footprint_sectors=tiny_cfg.logical_sectors // 2, seed=3,
        )
        trace = VDIWorkloadGenerator(spec).generate()
        rep = run_trace("ftl", trace, tiny_cfg, SimConfig())
        assert rep.attribution is None
        assert "attribution" not in rep.to_dict()


class TestEnginePhasesEvent:
    def test_request_phases_emitted_and_conserve(self, tiny_cfg):
        from repro.flash.service import FlashService
        from repro.ftl import make_ftl
        from repro.obs.events import RequestComplete, RequestPhases
        from repro.sim.engine import Simulator
        from repro.traces.synthetic import SyntheticSpec, VDIWorkloadGenerator

        spec = SyntheticSpec(
            "attr-ev", 300, 0.6, 0.25, 8.0,
            footprint_sectors=tiny_cfg.logical_sectors // 2, seed=5,
        )
        trace = VDIWorkloadGenerator(spec).generate()
        sim_cfg = SimConfig().replace_observability(
            enabled=True, attribution=True
        )
        service = FlashService(tiny_cfg)
        sim = Simulator(make_ftl("ftl", service), sim_cfg)
        latencies = {}
        phase_events = {}
        sim.obs.bus.subscribe(
            RequestComplete, lambda e: latencies.__setitem__(e.rid, e.latency)
        )
        sim.obs.bus.subscribe(
            RequestPhases,
            lambda e: phase_events.__setitem__(e.rid, dict(e.phases)),
        )
        sim.run(trace)
        assert phase_events
        for rid, phases in phase_events.items():
            assert sum(phases.values()) == pytest.approx(
                latencies[rid], abs=1e-9
            )
