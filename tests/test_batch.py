"""Batch execution layer: bit-identical replay through vector kernels.

``SimConfig.batch`` changes the execution strategy — columnar decode,
absorbed read runs, fused flush — but not one observable value.  These
tests hold the full canonical report (``benchgate.report_digest``)
equal between the scalar and batch loops on all three schemes, on aged
devices, with the oracle on, and composed with the event-driven
frontend; plus the behavioural contracts around it (MIN_READ_RUN
engagement, request-granular progress, config validation).
"""

import re

import numpy as np
import pytest

from repro.config import SimConfig, SSDConfig
from repro.errors import ConfigError
from repro.experiments.benchgate import report_digest
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.sim.engine import Simulator
from repro.traces.model import OP_READ, OP_WRITE, Trace
from repro.traces.synthetic import SyntheticSpec, VDIWorkloadGenerator
from repro.units import MIB

SCHEMES = ("ftl", "mrsm", "across")


def mixed_trace(cfg, n=300, seed=3, write_ratio=0.35):
    """A read-leaning synthetic workload (long read runs engage the
    kernel) sized to the given geometry."""
    spec = SyntheticSpec(
        name="batch-eq",
        requests=n,
        write_ratio=write_ratio,
        across_ratio=0.2,
        mean_write_kb=8.0,
        footprint_sectors=int(cfg.logical_sectors * 0.6),
        seed=seed,
        small_unaligned=0.3,
    )
    return VDIWorkloadGenerator(spec).generate()


def run_once(scheme, trace, sim_cfg, cfg):
    sim = Simulator(make_ftl(scheme, FlashService(cfg)), sim_cfg)
    report = sim.run(trace)
    return sim, report


def flat_trace(rows):
    """Build a trace from explicit ``(op, offset, size)`` rows, 1 ms
    apart."""
    ops = np.array([r[0] for r in rows], np.uint8)
    offsets = np.array([r[1] for r in rows], np.int64)
    sizes = np.array([r[2] for r in rows], np.int64)
    times = np.arange(len(rows), dtype=np.float64)
    return Trace("flat", times, ops, offsets, sizes)


class TestBitIdentical:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_full_report_equal_on_aged_device(self, scheme):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=2 * MIB)
        trace = mixed_trace(cfg)
        base = SimConfig(aged_used=0.55, aged_valid=0.30, seed=9)
        _, scalar = run_once(scheme, trace, base, cfg)
        sim, batched = run_once(
            scheme, trace, base.replace_batch(enabled=True), cfg
        )
        assert report_digest(batched) == report_digest(scalar)
        # the equality is meaningful only if the kernel actually ran
        assert sim._batch_kernel is not None
        assert sim._batch_kernel.requests_vectorised > 0

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_full_report_equal_with_oracle(self, scheme):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=2 * MIB)
        trace = mixed_trace(cfg, seed=5)
        base = SimConfig(check_oracle=True)
        _, scalar = run_once(scheme, trace, base, cfg)
        _, batched = run_once(
            scheme, trace, base.replace_batch(enabled=True), cfg
        )
        assert report_digest(batched) == report_digest(scalar)
        assert batched.extra["oracle_reads_verified"] > 0

    def test_small_max_batch_still_identical(self):
        cfg = SSDConfig.tiny()
        trace = mixed_trace(cfg, seed=7)
        _, scalar = run_once("across", trace, SimConfig(), cfg)
        _, batched = run_once(
            "across", trace,
            SimConfig().replace_batch(enabled=True, max_batch=5), cfg,
        )
        assert report_digest(batched) == report_digest(scalar)

    def test_report_shape_unchanged(self):
        """Batch stats live on the simulator, never in the report —
        the report dict feeds pinned digests."""
        cfg = SSDConfig.tiny()
        trace = mixed_trace(cfg, n=120)
        _, scalar = run_once("ftl", trace, SimConfig(), cfg)
        _, batched = run_once(
            "ftl", trace, SimConfig().replace_batch(enabled=True), cfg
        )
        assert batched.to_dict().keys() == scalar.to_dict().keys()
        assert batched.extra.keys() == scalar.extra.keys()


class TestFrontendComposition:
    def test_frontend_batch_release_identical(self):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=2 * MIB)
        trace = mixed_trace(cfg, seed=13)
        fe = SimConfig().replace_frontend(enabled=True)
        _, scalar = run_once("across", trace, fe, cfg)
        sim, batched = run_once(
            "across", trace, fe.replace_batch(enabled=True), cfg
        )
        assert report_digest(batched) == report_digest(scalar)
        # released as hazard-free batches, counted per request
        assert sim._frontend.batches_released > 0
        assert sim._frontend.batch_requests == len(trace)

    def test_scalar_frontend_releases_no_batches(self):
        cfg = SSDConfig.tiny()
        trace = mixed_trace(cfg, n=80)
        sim, _ = run_once(
            "ftl", trace, SimConfig().replace_frontend(enabled=True), cfg
        )
        assert sim._frontend.batches_released == 0
        assert sim._frontend.batch_requests == 0

    def test_frontend_batch_with_queue_depth(self):
        cfg = SSDConfig.tiny()
        trace = mixed_trace(cfg, seed=17)
        fe = SimConfig(queue_depth=8).replace_frontend(enabled=True)
        _, scalar = run_once("ftl", trace, fe, cfg)
        _, batched = run_once(
            "ftl", trace, fe.replace_batch(enabled=True), cfg
        )
        assert report_digest(batched) == report_digest(scalar)


class TestMinReadRun:
    def _seeded(self, rows):
        """40 whole-page writes (data + cached translation pages),
        then ``rows``."""
        seed = [(OP_WRITE, lpn * 16, 16) for lpn in range(40)]
        return flat_trace(seed + rows)

    def _vectorised(self, trace):
        cfg = SSDConfig.tiny()  # no write buffer: reads go to flash
        sim, _ = run_once(
            "ftl", trace, SimConfig().replace_batch(enabled=True), cfg
        )
        assert sim._batch_kernel is not None
        return sim._batch_kernel.requests_vectorised

    def test_short_runs_stay_scalar(self):
        rows = []
        for i in range(30):
            rows += [(OP_WRITE, (i % 40) * 16, 16),
                     (OP_READ, (i % 40) * 16, 16),
                     (OP_READ, ((i + 1) % 40) * 16, 16)]
        assert self._vectorised(self._seeded(rows)) == 0

    def test_long_runs_are_absorbed(self):
        rows = []
        for i in range(15):
            rows.append((OP_WRITE, (i % 40) * 16, 16))
            rows += [(OP_READ, ((i + j) % 40) * 16, 16) for j in range(6)]
        assert self._vectorised(self._seeded(rows)) >= 6


class TestBatchProgress:
    def test_progress_counts_requests_not_batches(self, monkeypatch, capsys):
        """Regression: with 15 segments of 8 requests, the progress
        line must advance per completed request (up to 160), not per
        batch (at most 15)."""
        from repro.sim import engine

        monkeypatch.setattr(engine, "_PROGRESS_EVERY_S", 0.0)
        cfg = SSDConfig.tiny()
        trace = mixed_trace(cfg, n=120)
        sim_cfg = SimConfig(progress=True).replace_batch(
            enabled=True, max_batch=8
        )
        run_once("ftl", trace, sim_cfg, cfg)
        err = capsys.readouterr().err
        done = [int(m) for m in re.findall(r"(\d+)/120", err)]
        assert done
        assert max(done) == 120                    # final line completes
        assert any(0 < d < 120 for d in done)      # mid-run updates
        assert len({d for d in done}) > 120 // 8   # finer than per-batch


class TestBatchConfig:
    def test_defaults_off(self):
        sc = SimConfig()
        assert sc.batch.enabled is False
        assert sc.batch.max_batch == 512
        assert sc.batch.aging is True

    def test_replace_batch_round_trip(self):
        sc = SimConfig().replace_batch(enabled=True, max_batch=64)
        assert sc.batch.enabled and sc.batch.max_batch == 64
        assert SimConfig().batch.enabled is False  # original untouched
        sc.validate()

    def test_rejects_nonpositive_max_batch(self):
        with pytest.raises(ConfigError):
            SimConfig().replace_batch(enabled=True, max_batch=0).validate()
