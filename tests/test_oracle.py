"""Sector-version oracle (repro.sim.oracle)."""

import pytest

from repro.sim.oracle import OracleMismatch, SectorOracle


@pytest.fixture
def oracle():
    return SectorOracle()


class TestStamping:
    def test_stamps_monotone(self, oracle):
        s1 = oracle.stamp_write(0, 4)
        s2 = oracle.stamp_write(0, 4)
        assert all(s2[k] > s1[k] for k in s1)

    def test_stamps_cover_extent(self, oracle):
        s = oracle.stamp_write(10, 5)
        assert set(s) == {10, 11, 12, 13, 14}

    def test_written_sectors(self, oracle):
        oracle.stamp_write(0, 4)
        oracle.stamp_write(2, 4)
        assert oracle.written_sectors() == 6


class TestVerification:
    def test_verify_ok(self, oracle):
        s = oracle.stamp_write(0, 4)
        oracle.verify(0, 4, dict(s))
        assert oracle.reads_verified == 1

    def test_stale_detected(self, oracle):
        s1 = oracle.stamp_write(0, 4)
        oracle.stamp_write(0, 4)
        with pytest.raises(OracleMismatch):
            oracle.verify(0, 4, dict(s1))

    def test_missing_detected(self, oracle):
        oracle.stamp_write(0, 4)
        with pytest.raises(OracleMismatch):
            oracle.verify(0, 4, {})

    def test_phantom_detected(self, oracle):
        with pytest.raises(OracleMismatch):
            oracle.verify(0, 4, {0: 99})

    def test_unwritten_ok_when_empty(self, oracle):
        oracle.verify(100, 8, {})
        oracle.verify(100, 8, None)

    def test_partial_extent_verification(self, oracle):
        s = oracle.stamp_write(0, 8)
        # reading a wider extent: unwritten tail must be absent
        found = dict(s)
        oracle.verify(0, 16, found)
