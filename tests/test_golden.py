"""Golden regression values: exact counters for a pinned workload.

The simulator is fully deterministic, so these numbers change only
when *behaviour* changes.  If a test here fails after an intentional
algorithmic change, inspect the delta, confirm it is expected (the
oracle and shape benches still pass), and update the constants with
the generator snippet in this file's history.

Beyond regression pinning, the relationships between the rows document
the schemes: across < ftl < mrsm in flash writes; the hybrid log-block
schemes burn multiples of everyone's programs and erases; MRSM's DRAM
count dwarfs the flat tables.
"""

import pytest

from repro import SimConfig, SSDConfig, SyntheticSpec, generate_trace, run_trace

GOLDEN = {
    "ftl": dict(writes=1196, reads=829, erases=0, update_reads=72, dram=2052),
    "mrsm": dict(writes=1322, reads=1073, erases=0, update_reads=28, dram=32050),
    "across": dict(writes=1023, reads=712, erases=0, update_reads=80, dram=2376),
    "bast": dict(writes=5790, reads=2640, erases=629, update_reads=72, dram=2052),
    "fast": dict(writes=5389, reads=2538, erases=261, update_reads=72, dram=2052),
}


@pytest.fixture(scope="module")
def golden_setup():
    cfg = SSDConfig.tiny()
    spec = SyntheticSpec(
        "golden",
        1_200,
        0.6,
        0.25,
        9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.6),
        seed=1234,
    )
    return cfg, generate_trace(spec)


@pytest.mark.parametrize("scheme", sorted(GOLDEN))
def test_golden_counters(scheme, golden_setup):
    cfg, trace = golden_setup
    rep = run_trace(scheme, trace, cfg, SimConfig())
    c = rep.counters
    got = dict(
        writes=c.total_writes,
        reads=c.total_reads,
        erases=c.erases,
        update_reads=c.update_reads,
        dram=c.dram_accesses,
    )
    assert got == GOLDEN[scheme]


def test_golden_relationships(golden_setup):
    g = GOLDEN
    # the paper's ordering on this across-heavy workload
    assert g["across"]["writes"] < g["ftl"]["writes"] < g["mrsm"]["writes"]
    assert g["across"]["reads"] < g["ftl"]["reads"]
    # MRSM trades RMW reads for mapping-tree DRAM traffic
    assert g["mrsm"]["update_reads"] < g["ftl"]["update_reads"]
    assert g["mrsm"]["dram"] > 10 * g["ftl"]["dram"]
    # hybrid log-block schemes pay with programs and erases
    for hybrid in ("bast", "fast"):
        assert g[hybrid]["writes"] > 3 * g["ftl"]["writes"]
        assert g[hybrid]["erases"] > 100
    # FAST improves on BAST under scattered updates
    assert g["fast"]["erases"] < g["bast"]["erases"]
