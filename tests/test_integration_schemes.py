"""Cross-scheme integration tests on a realistic (small) workload.

These assert the *relationships* the paper's evaluation is built on —
who issues fewer flash ops, who erases more, who touches DRAM more —
rather than absolute values, using a calibrated synthetic trace with
aging and GC pressure, with the oracle verifying data correctness the
whole way.
"""

import pytest

from repro.config import SCHEMES, SimConfig, SSDConfig
from repro.experiments.runner import compare_schemes
from repro.traces.synthetic import SyntheticSpec, generate_trace


@pytest.fixture(scope="module")
def reports():
    cfg = SSDConfig(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=48,
        pages_per_block=32,
        page_size_bytes=8 * 1024,
        write_buffer_bytes=1024 * 1024,
    )
    spec = SyntheticSpec(
        "integration",
        6_000,
        write_ratio=0.6,
        across_ratio=0.25,
        mean_write_kb=9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.8),
        seed=2023,
    )
    trace = generate_trace(spec)
    sim_cfg = SimConfig(aged_used=0.85, aged_valid=0.40, check_oracle=True)
    return compare_schemes(trace, cfg, sim_cfg)


class TestOracleHeldEverywhere:
    def test_every_scheme_verified(self, reports):
        for s in SCHEMES:
            assert reports[s].extra["oracle_reads_verified"] > 500


class TestFlashOpOrdering:
    def test_across_fewest_writes(self, reports):
        w = {s: reports[s].counters.total_writes for s in SCHEMES}
        assert w["across"] < w["ftl"] < w["mrsm"]

    def test_across_fewest_reads(self, reports):
        r = {s: reports[s].counters.total_reads for s in SCHEMES}
        assert r["across"] < r["ftl"]
        assert r["across"] < r["mrsm"]

    def test_across_reduces_update_reads(self, reports):
        assert (
            reports["across"].counters.update_reads
            < reports["ftl"].counters.update_reads
        )

    def test_mrsm_has_map_traffic_others_negligible(self, reports):
        assert reports["mrsm"].counters.map_write_share() > 0.02
        assert reports["ftl"].counters.map_write_share() < 0.02
        assert reports["across"].counters.map_write_share() < 0.05


class TestEnduranceOrdering:
    def test_erase_ordering(self, reports):
        e = {s: reports[s].erase_count for s in SCHEMES}
        assert e["across"] <= e["ftl"]
        assert e["ftl"] <= e["mrsm"]
        assert e["across"] < e["mrsm"]

    def test_gc_ran_everywhere(self, reports):
        for s in SCHEMES:
            assert reports[s].erase_count > 0, s


class TestOverheadOrdering:
    def test_dram_accesses(self, reports):
        d = {s: reports[s].counters.dram_accesses for s in SCHEMES}
        assert d["mrsm"] > 3 * d["ftl"]
        assert d["across"] < 2 * d["ftl"]

    def test_mapping_table_sizes(self, reports):
        sz = {s: reports[s].mapping_table_bytes for s in SCHEMES}
        assert sz["ftl"] < sz["across"] < sz["mrsm"]
        # across ratio near the paper's 1.4x-1.5x
        assert 1.2 < sz["across"] / sz["ftl"] < 1.8


class TestLatencyOrdering:
    def test_across_fastest_overall(self, reports):
        io = {s: reports[s].total_io_ms for s in SCHEMES}
        assert io["across"] < io["ftl"]
        assert io["across"] < io["mrsm"]

    def test_mrsm_reads_slowest(self, reports):
        rd = {s: reports[s].mean_read_ms for s in SCHEMES}
        assert rd["mrsm"] > rd["ftl"]


class TestAcrossActivity:
    def test_across_stats_populated(self, reports):
        e = reports["across"].extra
        assert e["across_direct_writes"] > 100
        assert e["across_profitable_amerge"] > 10
        assert e["amt_created"] >= e["across_rollbacks"]
        assert e["across_rollback_ratio"] < 0.25

    def test_direct_reads_happen(self, reports):
        assert reports["across"].extra["across_direct_reads"] > 0
