"""The serve layer (repro.fleet.service): request handling, the store
cache loop, and the HTTP server."""

import json
import urllib.error
import urllib.request

import pytest

from repro.config import SSDConfig
from repro.experiments.parallel import ResultStore
from repro.fleet.service import FleetService, start_server_thread

TINY = SSDConfig.tiny()

SWEEP_REQ = {
    "kind": "sweep",
    "schemes": ["ftl", "across"],
    "workload": {"requests": 300, "seed": 5},
    "device": "tiny",
}

FLEET_REQ = {
    "kind": "fleet",
    "fleet": {"shards": 2, "tenants": 4, "requests_per_tenant": 40},
    "device": "tiny",
}


@pytest.fixture()
def service(tmp_path):
    return FleetService(ResultStore(tmp_path / "store"), device=TINY)


class TestSweepRequests:
    def test_first_request_executes(self, service):
        doc = service.handle_request(SWEEP_REQ)
        assert doc["ok"] and doc["kind"] == "sweep"
        assert doc["executed"] == 2 and doc["cached"] == 0
        assert len(doc["results"]) == 2
        for body in doc["results"].values():
            assert body["requests"] == 300

    def test_duplicate_is_pure_cache_hit(self, service):
        first = service.handle_request(SWEEP_REQ)
        second = service.handle_request(SWEEP_REQ)
        assert second["executed"] == 0
        assert second["cached"] == 2
        assert second["digest"] == first["digest"]
        assert second["results"] == first["results"]

    def test_changed_workload_misses(self, service):
        service.handle_request(SWEEP_REQ)
        other = dict(SWEEP_REQ, workload={"requests": 301, "seed": 5})
        doc = service.handle_request(other)
        assert doc["executed"] == 2 and doc["cached"] == 0

    def test_defaults_fill_in(self, service):
        doc = service.handle_request({"kind": "sweep", "device": "tiny",
                                      "workload": {"requests": 50}})
        assert doc["ok"]
        assert len(doc["results"]) > 2  # all schemes by default

    @pytest.mark.parametrize("req, frag", [
        ({"kind": "warp"}, "unknown request kind"),
        ({"kind": "sweep", "schemes": ["bogus"]}, "unknown scheme"),
        ({"kind": "sweep", "workload": {"requestz": 1}}, "workload field"),
        ({"kind": "sweep", "sim": {"agedd": 1}}, "unknown sim field"),
        ({"kind": "sweep", "device": "huge"}, "preset"),
        ({"kind": "sweep",
          "workload": {"footprint_fraction": 2.0}}, "footprint_fraction"),
        ({"kind": "fleet", "fleet": {"shards": 0}}, "shards"),
        ({"kind": "fleet",
          "sim": {"qos_streams": [8]}}, "shard plan"),
    ])
    def test_bad_requests_answered_not_raised(self, service, req, frag):
        doc = service.handle_request(req)
        assert doc["ok"] is False
        assert frag in doc["error"]

    def test_error_counted(self, service):
        service.handle_request({"kind": "warp"})
        assert service.stats()["service"]["errors_total"] == 1


class TestFleetRequests:
    def test_fleet_round_trip(self, service):
        doc = service.handle_request(FLEET_REQ)
        assert doc["ok"] and doc["kind"] == "fleet"
        assert len(doc["tenants"]) == 4
        assert doc["summary"]["tenants"] == 4
        assert all(s["ok"] for s in doc["shards"])

    def test_duplicate_fleet_is_cache_hit(self, service):
        first = service.handle_request(FLEET_REQ)
        second = service.handle_request(FLEET_REQ)
        assert second["executed"] == 0
        assert second["cached"] == len(first["shards"])
        assert second["digest"] == first["digest"]
        assert second["tenants"] == first["tenants"]

    def test_stats_accumulate(self, service):
        service.handle_request(FLEET_REQ)
        service.handle_request(FLEET_REQ)
        s = service.stats()
        assert s["service"]["fleets_total"] == 2
        assert s["service"]["runs_cached_total"] >= 2
        assert s["store"]["puts"] >= 2


class TestHttpServer:
    @pytest.fixture(scope="class")
    def server(self, tmp_path_factory):
        store = ResultStore(tmp_path_factory.mktemp("serve") / "store")
        handle = start_server_thread(FleetService(store, device=TINY))
        yield f"http://{handle.host}:{handle.port}"
        handle.stop()

    def _post(self, base, payload):
        req = urllib.request.Request(
            base + "/simulate",
            data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=300) as resp:
            return json.load(resp)

    def test_healthz(self, server):
        with urllib.request.urlopen(server + "/healthz", timeout=30) as r:
            assert json.load(r) == {"ok": True}

    def test_duplicate_sweep_served_from_store(self, server):
        first = self._post(server, SWEEP_REQ)
        second = self._post(server, SWEEP_REQ)
        assert first["ok"] and second["ok"]
        assert second["executed"] == 0 and second["cached"] == 2
        assert second["digest"] == first["digest"]

    def test_stats_route(self, server):
        with urllib.request.urlopen(server + "/stats", timeout=30) as r:
            doc = json.load(r)
        assert "service" in doc and "store" in doc

    def test_metrics_route(self, server):
        with urllib.request.urlopen(server + "/metrics", timeout=30) as r:
            text = r.read().decode()
        assert "# TYPE repro_serve_requests_total counter" in text
        assert "repro_store_inflight" in text

    def test_unknown_route_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as ei:
            urllib.request.urlopen(server + "/nope", timeout=30)
        assert ei.value.code == 404

    def test_bad_json_400(self, server):
        req = urllib.request.Request(
            server + "/simulate", data=b"{not json"
        )
        with pytest.raises(urllib.error.HTTPError) as ei:
            urllib.request.urlopen(req, timeout=30)
        assert ei.value.code == 400

    def test_bad_request_400_with_reason(self, server):
        req = urllib.request.Request(
            server + "/simulate",
            data=json.dumps({"kind": "warp"}).encode(),
        )
        with pytest.raises(urllib.error.HTTPError) as ei:
            urllib.request.urlopen(req, timeout=30)
        assert ei.value.code == 400
        assert "unknown request kind" in json.load(ei.value)["error"]
