"""Host queue-depth (NCQ) limit in the engine."""

import numpy as np
import pytest

from repro.config import SimConfig, SSDConfig
from repro.errors import ConfigError
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.sim.engine import Simulator
from repro.traces.model import OP_WRITE, Trace


def burst_trace(n=32):
    """All requests arrive at t=0 against the same few chips."""
    return Trace(
        "burst",
        np.zeros(n),
        np.full(n, OP_WRITE, dtype=np.uint8),
        (np.arange(n) * 16).astype(np.int64),
        np.full(n, 16, dtype=np.int64),
    )


def run(qd):
    svc = FlashService(SSDConfig.tiny())
    sim = Simulator(make_ftl("ftl", svc), SimConfig(queue_depth=qd))
    rep = sim.run(burst_trace())
    return rep


class TestQueueDepth:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SimConfig(queue_depth=0).validate()

    def test_unlimited_by_default(self):
        rep = run(None)
        assert rep.requests == 32

    def test_depth_one_serialises(self):
        rep1 = run(1)
        repN = run(None)
        # with QD=1 each request waits for the previous one: mean
        # latency strictly larger than the unlimited replay
        assert rep1.mean_write_ms > repN.mean_write_ms

    def test_latency_includes_host_wait(self):
        # tiny device: 4 chips; 32 writes at t=0 with QD=4 must finish
        # no earlier than 32 programs / 4 chips * 2ms for the last one
        rep = run(4)
        assert rep.latency.summaries()["write_normal"].max_ms >= 16.0 - 1e-6

    def test_monotone_in_depth(self):
        lat = [run(qd).mean_write_ms for qd in (1, 4, 16)]
        assert lat[0] >= lat[1] >= lat[2]

    def test_slot_frees_on_earliest_completion(self):
        """NCQ semantics: a crafted 3-request trace where the *second*
        request finishes long before the first.  The third request's
        slot must open when the short request completes, not when the
        oldest-submitted one does (the old FIFO ``completions[i - qd]``
        model got this wrong).
        """
        from repro.traces.model import OP_READ

        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(
            make_ftl("ftl", svc),
            SimConfig(queue_depth=2, record_requests=True),
        )
        # R0: large write -> finishes late.  R1: read of a never-written
        # extent -> completes ~instantly without touching flash.  R2:
        # another such read; with QD=2 it waits for a free slot.
        trace = Trace(
            "heap",
            np.zeros(3),
            np.array([OP_WRITE, OP_READ, OP_READ], dtype=np.uint8),
            np.array([0, 5000 * 16, 6000 * 16], dtype=np.int64),
            np.array([512, 16, 16], dtype=np.int64),
        )
        sim.run(trace)
        lat = sim.request_log.latency
        # all three arrive at t=0, so latency == completion time
        assert lat[1] < lat[0]  # the short read finished first
        # heap model: R2 started when R1 freed a slot -> far earlier
        # than R0's completion (FIFO would force lat[2] > lat[0])
        assert lat[2] < lat[0]

    def test_completion_window_bounded(self):
        """The engine no longer keeps the whole completion history."""
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("ftl", svc), SimConfig(queue_depth=4))
        sim.run(burst_trace(300))
        assert len(sim._completions) <= 128

    def test_data_correct_under_queue_limit(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(
            make_ftl("across", svc),
            SimConfig(queue_depth=2, check_oracle=True),
        )
        n = 40
        rng = np.random.default_rng(8)
        ops = rng.integers(0, 2, n).astype(np.uint8)
        offsets = (rng.integers(0, 500, n) * 4).astype(np.int64)
        sizes = rng.integers(1, 24, n).astype(np.int64)
        times = np.sort(rng.uniform(0, 10, n))
        sim.run(Trace("q", times, ops, offsets, sizes))


class TestDeepQueues:
    """Regression: the completion window was fixed at 128 entries, so
    the in-flight gauge undercounted whenever queue_depth > 128."""

    def test_window_sized_from_queue_depth(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("ftl", svc), SimConfig(queue_depth=192))
        assert sim._completions.maxlen == 192

    def test_window_never_shrinks_below_default(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("ftl", svc), SimConfig(queue_depth=4))
        assert sim._completions.maxlen == 128
        svc = FlashService(SSDConfig.tiny())
        assert Simulator(make_ftl("ftl", svc))._completions.maxlen == 128

    def test_gauge_tracks_beyond_128(self):
        from repro.config import FrontendConfig, ObservabilityConfig

        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(
            make_ftl("ftl", svc),
            SimConfig(
                queue_depth=192,
                frontend=FrontendConfig(enabled=True),
                observability=ObservabilityConfig(
                    enabled=True, sample_interval_ms=0.01
                ),
            ),
        )
        sim.run(burst_trace(256))
        series = sim.obs.samplers.series()["queue_depth"]
        assert max(series["values"]) > 128


class TestGaugeClock:
    """Regression: ``_inflight`` compared completion times against
    ``self._now``, which still held the request *start* time when
    ``obs.maybe_sample(finish)`` sampled at completion time — so the
    just-finished request (and anything else completing inside its
    service window) was counted as still outstanding."""

    def test_serial_replay_gauge_reads_zero(self):
        from repro.config import ObservabilityConfig

        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(
            make_ftl("ftl", svc),
            SimConfig(
                queue_depth=1,
                observability=ObservabilityConfig(
                    enabled=True, sample_interval_ms=0.01
                ),
            ),
        )
        sim.run(burst_trace(64))
        series = sim.obs.samplers.series()["queue_depth"]
        # QD=1 fully serialises: at every completion-time sample no
        # other request is in flight (the stale clock read >= 1 here,
        # because the sampled request itself counted as outstanding)
        assert series["values"]
        assert max(series["values"]) == 0

    def test_gauge_bounded_by_queue_depth(self):
        from repro.config import ObservabilityConfig

        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(
            make_ftl("ftl", svc),
            SimConfig(
                queue_depth=4,
                observability=ObservabilityConfig(
                    enabled=True, sample_interval_ms=0.01
                ),
            ),
        )
        sim.run(burst_trace(128))
        series = sim.obs.samplers.series()["queue_depth"]
        assert max(series["values"]) <= 4
