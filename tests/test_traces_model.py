"""Trace container semantics (repro.traces.model)."""

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.model import OP_READ, OP_WRITE, Trace


def make(times, ops, offsets, sizes, name="t"):
    return Trace(name, np.array(times, float), np.array(ops, np.uint8),
                 np.array(offsets, np.int64), np.array(sizes, np.int64))


class TestValidation:
    def test_mismatched_lengths(self):
        with pytest.raises(TraceFormatError):
            make([0.0], [0, 1], [0, 8], [4, 4])

    def test_nonpositive_size(self):
        with pytest.raises(TraceFormatError):
            make([0.0], [0], [0], [0])

    def test_negative_offset(self):
        with pytest.raises(TraceFormatError):
            make([0.0], [0], [-4], [4])

    def test_unknown_op(self):
        with pytest.raises(TraceFormatError):
            make([0.0], [3], [0], [4])

    def test_trim_op_accepted(self):
        t = make([0.0], [2], [0], [4])
        assert t.ops[0] == 2

    def test_unsorted_times_get_sorted(self):
        t = make([5.0, 1.0], [OP_READ, OP_WRITE], [0, 8], [4, 4])
        assert list(t.times) == [1.0, 5.0]
        assert t.ops[0] == OP_WRITE
        assert t.offsets[0] == 8

    def test_empty_trace(self):
        t = make([], [], [], [])
        assert len(t) == 0
        assert t.write_ratio == 0.0
        assert t.footprint_sectors == 0


class TestProperties:
    def test_write_ratio(self):
        t = make([0, 1, 2, 3], [1, 1, 1, 0], [0] * 4, [4] * 4)
        assert t.write_ratio == pytest.approx(0.75)

    def test_footprint(self):
        t = make([0, 1], [1, 1], [100, 4], [8, 4])
        assert t.footprint_sectors == 108

    def test_duration(self):
        t = make([2.0, 10.0], [1, 1], [0, 8], [4, 4])
        assert t.duration_ms() == pytest.approx(8.0)

    def test_iteration(self):
        t = make([0.0, 1.0], [OP_WRITE, OP_READ], [0, 16], [4, 8])
        rows = list(t)
        assert rows == [(OP_WRITE, 0, 4, 0.0), (OP_READ, 16, 8, 1.0)]


class TestTransforms:
    def test_head(self):
        t = make([0, 1, 2], [1, 1, 1], [0, 16, 32], [4, 4, 4])
        h = t.head(2)
        assert len(h) == 2
        assert list(h.offsets) == [0, 16]

    def test_clamp_wraps_offsets(self):
        t = make([0.0], [1], [1000], [8])
        c = t.clamped_to(512)
        assert c.offsets[0] + c.sizes[0] <= 512
        assert c.offsets[0] >= 0

    def test_clamp_drops_oversized(self):
        t = make([0.0, 1.0], [1, 1], [0, 0], [4, 600])
        c = t.clamped_to(512)
        assert len(c) == 1

    def test_clamp_preserves_fitting_requests(self):
        t = make([0.0], [1], [100], [8])
        c = t.clamped_to(512)
        assert c.offsets[0] == 100 and c.sizes[0] == 8

    def test_clamp_bad_space(self):
        t = make([0.0], [1], [0], [4])
        with pytest.raises(TraceFormatError):
            t.clamped_to(0)

    def test_from_lists(self):
        t = Trace.from_lists("x", [(OP_WRITE, 0, 4, 0.0), (OP_READ, 8, 4, 1.0)])
        assert len(t) == 2 and t.name == "x"

    def test_from_lists_empty(self):
        t = Trace.from_lists("x", [])
        assert len(t) == 0

    def test_scaled_time(self):
        t = make([0.0, 10.0], [1, 1], [0, 16], [4, 4])
        s = t.scaled_time(2.0)
        assert list(s.times) == [0.0, 20.0]
        with pytest.raises(TraceFormatError):
            t.scaled_time(0.0)

    def test_filtered_ops(self):
        t = make([0, 1, 2], [OP_WRITE, OP_READ, OP_WRITE], [0, 16, 32],
                 [4, 4, 4])
        w = t.filtered_ops({OP_WRITE})
        assert len(w) == 2
        assert (w.ops == OP_WRITE).all()

    def test_window(self):
        t = make([0.0, 5.0, 10.0], [1, 1, 1], [0, 16, 32], [4, 4, 4])
        mid = t.window(4.0, 9.0)
        assert len(mid) == 1 and mid.offsets[0] == 16

    def test_concat(self):
        a = make([0.0, 5.0], [1, 1], [0, 16], [4, 4], name="a")
        b = make([0.0], [0], [32], [8], name="b")
        c = Trace.concat([a, b])
        assert len(c) == 3
        assert c.times[2] > c.times[1]  # b shifted past a
        assert c.offsets[2] == 32

    def test_concat_empty(self):
        assert len(Trace.concat([])) == 0

    def test_interleave_sorts_by_time(self):
        a = make([0.0, 10.0], [1, 1], [0, 16], [4, 4], name="a")
        b = make([5.0], [0], [32], [8], name="b")
        m = Trace.interleave([a, b])
        assert list(m.times) == [0.0, 5.0, 10.0]
        assert m.ops[1] == OP_READ  # b's read landed in the middle

    def test_interleave_partitions_addresses(self):
        a = make([0.0], [1], [0], [16], name="a")
        b = make([1.0], [1], [0], [16], name="b")
        m = Trace.interleave([a, b])
        assert len(set(m.offsets.tolist())) == 2  # disjoint slices

    def test_interleave_shared_addresses(self):
        a = make([0.0], [1], [0], [16], name="a")
        b = make([1.0], [1], [0], [16], name="b")
        m = Trace.interleave([a, b], partitioned=False)
        assert set(m.offsets.tolist()) == {0}

    def test_interleave_empty(self):
        assert len(Trace.interleave([])) == 0

    def test_interleaved_tenants_simulate(self):
        from repro import SimConfig, SSDConfig, run_trace

        cfg = SSDConfig.tiny()
        rng_a = make([0.0, 2.0, 4.0], [1, 1, 0], [0, 16, 0], [16, 8, 16],
                     name="a")
        rng_b = make([1.0, 3.0], [1, 0], [0, 0], [12, 12], name="b")
        merged = Trace.interleave([rng_a, rng_b])
        rep = run_trace("across", merged, cfg, SimConfig(check_oracle=True))
        assert rep.requests == 5
