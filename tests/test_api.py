"""Public API integrity: exports exist, are documented, and modules
carry docstrings (deliverable: doc comments on every public item)."""

import importlib
import inspect
import pkgutil

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_schemes_constructible(self, tiny_cfg):
        from repro.flash.service import FlashService

        for scheme in repro.SCHEMES:
            ftl = repro.make_ftl(scheme, FlashService(tiny_cfg))
            assert ftl.name == scheme


def _public_members(mod):
    for name, obj in vars(mod).items():
        if name.startswith("_"):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            if getattr(obj, "__module__", "").startswith("repro"):
                yield name, obj


ALL_MODULES = [
    mod.name
    for mod in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not mod.ispkg
]


class TestDocumentation:
    @pytest.mark.parametrize("modname", ALL_MODULES)
    def test_module_docstring(self, modname):
        mod = importlib.import_module(modname)
        assert mod.__doc__ and mod.__doc__.strip(), modname

    @pytest.mark.parametrize("modname", ALL_MODULES)
    def test_public_classes_and_functions_documented(self, modname):
        mod = importlib.import_module(modname)
        undocumented = []
        for name, obj in _public_members(mod):
            if obj.__module__ != modname:
                continue  # re-export; documented at home
            if not (obj.__doc__ and obj.__doc__.strip()):
                undocumented.append(name)
            if inspect.isclass(obj):
                for mname, meth in vars(obj).items():
                    if mname.startswith("_") or not inspect.isfunction(meth):
                        continue
                    if not (meth.__doc__ and meth.__doc__.strip()):
                        undocumented.append(f"{name}.{mname}")
        assert not undocumented, f"{modname}: undocumented {undocumented}"


class TestModuleLayout:
    def test_expected_subpackages(self):
        import repro.cache
        import repro.core
        import repro.experiments
        import repro.flash
        import repro.ftl
        import repro.metrics
        import repro.sim
        import repro.traces

    def test_cli_entrypoint_importable(self):
        from repro.cli import main  # noqa: F401
        from repro.__main__ import main as _  # noqa: F401
