"""Figure-reproduction functions on a micro context.

These validate structure and internal consistency of every figure
function; the full-scale shape comparison against the paper lives in
the benchmark harness (benchmarks/) and EXPERIMENTS.md.
"""

import pytest

from repro.config import SCHEMES, SimConfig, SSDConfig
from repro.experiments import figures as F
from repro.experiments.runner import ExperimentContext


@pytest.fixture(scope="module")
def ctx():
    cfg = SSDConfig(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=32,
        pages_per_block=16,
        page_size_bytes=8 * 1024,
        write_buffer_bytes=512 * 1024,
    )
    return ExperimentContext(
        cfg=cfg,
        sim_cfg=SimConfig(aged_used=0.6, aged_valid=0.3),
        scale=0.002,
    )


def test_fig2(ctx):
    r = F.fig2(ctx, count=8)
    assert len(r.series["ratios"]) == 8
    assert all(0.0 <= x <= 0.5 for x in r.series["ratios"])
    assert "Fig. 2" in r.rendered


def test_table2(ctx):
    r = F.table2(ctx)
    assert set(r.series["rows"]) == {f"lun{i}" for i in range(1, 7)}


def test_fig4(ctx):
    r = F.fig4(ctx)
    for name, vals in r.series["rows"].items():
        assert len(vals) == 6
    # across-page requests must cost more flushes per sector
    assert float(r.paper_vs_measured["flush ratio"][1]) > 1.0


def test_fig8(ctx):
    r = F.fig8(ctx)
    for vals in r.series["rows"].values():
        rollback, direct, prof, unprof, merged = vals
        assert 0 <= rollback <= 1
        assert direct + prof + unprof == pytest.approx(1.0, abs=1e-6)
        assert 0 <= merged <= 1


def test_fig9(ctx):
    r = F.fig9(ctx)
    for key in ("read", "write", "io"):
        rows = r.series[key]
        for name, vals in rows.items():
            assert vals["ftl"] == pytest.approx(1.0)
            assert all(v > 0 for v in vals.values())


def test_fig10(ctx):
    r = F.fig10(ctx)
    for name, vals in r.series["writes"].items():
        assert vals[SCHEMES.index("ftl")] == pytest.approx(1.0)


def test_fig11(ctx):
    r = F.fig11(ctx)
    for name, vals in r.series.items():
        assert vals["ftl"] == pytest.approx(1.0)


def test_fig12(ctx):
    r = F.fig12(ctx)
    # MRSM's table is the largest, across is between ftl and mrsm
    for name, sizes in r.series["size_mib"].items():
        ftl_sz, mrsm_sz, across_sz = sizes
        assert across_sz >= ftl_sz * 0.9
    for name, vals in r.series["dram"].items():
        assert vals[SCHEMES.index("mrsm")] > vals[SCHEMES.index("ftl")]


def test_fig13(ctx):
    r = F.fig13(ctx)
    for name, vals in r.series.items():
        assert len(vals) == 3


def test_fig14_structure(ctx):
    r = F.fig14(ctx)
    assert set(r.series) == {"4KB", "8KB", "16KB"}
    for label, d in r.series.items():
        assert set(d) == {"io", "erase"}


def test_all_figures_registry():
    assert set(F.ALL_FIGURES) == {
        "fig2", "fig4", "table2", "fig8", "fig9", "fig10", "fig11",
        "fig12", "fig13", "fig14",
    }
