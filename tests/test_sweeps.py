"""Parameter-sweep utilities (repro.experiments.sweeps)."""

import pytest

from repro.config import SSDConfig
from repro.experiments.sweeps import sweep_config, sweep_sim, sweep_workload
from repro.traces.synthetic import SyntheticSpec, generate_trace


@pytest.fixture(scope="module")
def setting():
    cfg = SSDConfig.tiny()
    spec = SyntheticSpec(
        "sweep",
        800,
        0.6,
        0.25,
        9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.6),
        seed=5,
    )
    return cfg, spec, generate_trace(spec)


class TestSweepConfig:
    def test_gc_policy_sweep(self, setting):
        cfg, _, trace = setting
        res = sweep_config(
            "gc_policy", ["greedy", "cost_benefit"], trace, cfg,
            metric="erase_count", schemes=("ftl",),
        )
        assert set(res.values) == {"greedy", "cost_benefit"}
        assert all("ftl" in v for v in res.values.values())
        assert "sweep of gc_policy" in res.rendered()

    def test_series_extraction(self, setting):
        cfg, _, trace = setting
        res = sweep_config(
            "write_buffer_bytes", [0, 1024 * 1024], trace, cfg,
            metric="flash_reads", schemes=("ftl",),
        )
        series = res.scheme_series("ftl")
        assert len(series) == 2
        # a data cache can only reduce flash reads
        assert series[1] <= series[0]

    def test_custom_metric_fn(self, setting):
        cfg, _, trace = setting
        res = sweep_config(
            "op_ratio", [0.125, 0.25], trace, cfg,
            metric=lambda rep: float(rep.counters.total_writes),
            schemes=("across",),
        )
        assert all(v["across"] > 0 for v in res.values.values())


class TestSweepSim:
    def test_queue_depth_sweep(self, setting):
        cfg, _, trace = setting
        res = sweep_sim(
            "queue_depth", [1, None], trace, cfg,
            metric="total_io_ms", schemes=("ftl",),
        )
        # deeper queue (unlimited) can only lower total latency
        assert res.values["None"]["ftl"] <= res.values["1"]["ftl"]


class TestSweepWorkload:
    def test_across_ratio_sweep(self, setting):
        cfg, spec, _ = setting
        res = sweep_workload(
            "across_ratio", [0.0, 0.3], spec, cfg,
            metric="flash_writes", schemes=("ftl", "across"),
        )
        zero = res.values["0.0"]
        hi = res.values["0.3"]
        # with no across requests the schemes behave alike; at 30% the
        # baseline pays the two-programs penalty
        assert abs(zero["across"] - zero["ftl"]) / zero["ftl"] < 0.05
        assert hi["across"] < hi["ftl"]

    def test_invalid_point_rejected(self, setting):
        cfg, spec, _ = setting
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            sweep_workload("across_ratio", [1.5], spec, cfg)
