"""Synthetic VDI workload generator calibration and determinism."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.traces.stats import across_page_ratio, characterize
from repro.traces.synthetic import (
    SyntheticSpec,
    VDIWorkloadGenerator,
    generate_trace,
    trace_collection,
)

FOOTPRINT = 64 * 1024  # sectors (32 MiB)


def spec(**kw):
    base = dict(
        name="t",
        requests=6_000,
        write_ratio=0.6,
        across_ratio=0.25,
        mean_write_kb=9.0,
        footprint_sectors=FOOTPRINT,
        seed=42,
    )
    base.update(kw)
    return SyntheticSpec(**base)


class TestCalibration:
    def test_across_ratio_at_8k(self):
        t = generate_trace(spec())
        assert across_page_ratio(t, 8192) == pytest.approx(0.25, abs=0.03)

    def test_write_ratio(self):
        t = generate_trace(spec())
        assert t.write_ratio == pytest.approx(0.6, abs=0.03)

    def test_mean_write_size(self):
        t = generate_trace(spec())
        st = characterize(t, 8192)
        assert st.mean_write_kb == pytest.approx(9.0, rel=0.12)

    def test_larger_write_size_target(self):
        t = generate_trace(spec(mean_write_kb=12.0, across_ratio=0.16))
        st = characterize(t, 8192)
        assert st.mean_write_kb == pytest.approx(12.0, rel=0.12)

    def test_ratio_decreases_with_page_size(self):
        t = generate_trace(spec())
        r4 = across_page_ratio(t, 4096)
        r8 = across_page_ratio(t, 8192)
        r16 = across_page_ratio(t, 16384)
        assert r4 > r8 > r16

    def test_footprint_respected(self):
        t = generate_trace(spec())
        assert t.footprint_sectors <= FOOTPRINT

    def test_times_non_decreasing(self):
        t = generate_trace(spec())
        assert (np.diff(t.times) >= 0).all()


class TestDeterminism:
    def test_same_seed_same_trace(self):
        a = generate_trace(spec())
        b = generate_trace(spec())
        assert np.array_equal(a.offsets, b.offsets)
        assert np.array_equal(a.sizes, b.sizes)
        assert np.array_equal(a.ops, b.ops)

    def test_different_seed_differs(self):
        a = generate_trace(spec(seed=1))
        b = generate_trace(spec(seed=2))
        assert not np.array_equal(a.offsets, b.offsets)


class TestAcrossSiteDynamics:
    def test_sites_reused(self):
        gen = VDIWorkloadGenerator(spec(site_reuse=0.9))
        gen.generate()
        # with heavy reuse, far fewer sites than across requests exist
        assert len(gen._sites) < 0.25 * 6_000

    def test_no_reuse_many_sites(self):
        gen = VDIWorkloadGenerator(spec(site_reuse=0.0, write_ratio=1.0))
        gen.generate()
        assert len(gen._sites) == pytest.approx(0.25 * 6_000, rel=0.15)


class TestValidation:
    def test_bad_ratio(self):
        with pytest.raises(ConfigError):
            spec(across_ratio=1.5).validate()

    def test_bad_probability_sum(self):
        with pytest.raises(ConfigError):
            spec(p_overwrite=0.8, p_extend=0.4).validate()

    def test_tiny_footprint(self):
        with pytest.raises(ConfigError):
            spec(footprint_sectors=16).validate()

    def test_bad_zipf(self):
        with pytest.raises(ConfigError):
            spec(zipf_s=0.0).validate()

    def test_bad_hot_zones(self):
        with pytest.raises(ConfigError):
            spec(hot_zones=0).validate()


class TestSitePopulations:
    def test_small_site_pool_bounded(self):
        gen = VDIWorkloadGenerator(
            spec(requests=20_000, write_ratio=1.0, small_unaligned=0.6)
        )
        gen.generate()
        cap = max(256, FOOTPRINT // 16 // 128)
        assert len(gen._small_sites) <= cap

    def test_across_mixture_has_big_and_small_extents(self):
        gen = VDIWorkloadGenerator(spec(write_ratio=1.0))
        t = gen.generate()
        sizes = {s for _, s in gen._sites}
        assert any(s <= 4 for s in sizes), "small tails missing"
        assert any(s >= 8 for s in sizes), "bulk extents missing"

    def test_big_fraction_zero_keeps_extents_small(self):
        gen = VDIWorkloadGenerator(
            spec(across_big_fraction=0.0, write_ratio=1.0)
        )
        gen.generate()
        sizes = [s for _, s in gen._sites]
        # created at 2..4 sectors; extensions may grow them a little,
        # but never to the bulk band and never past a reference page
        assert max(sizes) <= 16
        assert sum(1 for s in sizes if s <= 4) > len(sizes) * 0.6

    def test_site_boundary_avoidance_is_best_effort(self):
        gen = VDIWorkloadGenerator(spec(write_ratio=1.0))
        gen.generate()
        boundaries = sorted(gen._site_boundaries)
        # adjacent across-site boundaries force rollbacks, so creation
        # retries away from them; under heavy zone concentration on a
        # small footprint some collisions remain (best effort)
        adjacent = sum(
            1 for a, b in zip(boundaries, boundaries[1:]) if b - a == 1
        )
        assert adjacent < len(boundaries) * 0.4


class TestSpecFromStats:
    def test_twin_matches_source_statistics(self):
        from repro.traces.stats import characterize
        from repro.traces.synthetic import spec_from_stats

        source = generate_trace(spec(seed=77, across_ratio=0.2,
                                     write_ratio=0.5, mean_write_kb=10.0))
        st = characterize(source, 8192)
        twin_spec = spec_from_stats(st, seed=5)
        twin = generate_trace(twin_spec)
        st2 = characterize(twin, 8192)
        assert st2.requests == st.requests
        assert st2.write_ratio == pytest.approx(st.write_ratio, abs=0.03)
        assert st2.across_ratio == pytest.approx(st.across_ratio, abs=0.03)
        assert st2.mean_write_kb == pytest.approx(st.mean_write_kb, rel=0.15)

    def test_twin_rescalable(self):
        from repro.traces.stats import characterize
        from repro.traces.synthetic import spec_from_stats

        source = generate_trace(spec(seed=3))
        st = characterize(source, 8192)
        small = spec_from_stats(st, requests=500)
        assert len(generate_trace(small)) == 500

    def test_empty_trace_rejected(self):
        from repro.errors import ConfigError
        from repro.traces.stats import TraceStats
        from repro.traces.synthetic import spec_from_stats

        empty = TraceStats("e", 0, 0, 0, 0, 0, 0, 0, 0, 0)
        with pytest.raises(ConfigError):
            spec_from_stats(empty)


class TestCollection:
    def test_collection_count_and_spread(self):
        specs = trace_collection(20, footprint_sectors=FOOTPRINT, requests=800)
        assert len(specs) == 20
        ratios = [s.across_ratio for s in specs]
        assert min(ratios) >= 0.01 and max(ratios) <= 0.40
        assert max(ratios) - min(ratios) > 0.05  # actual spread

    def test_collection_traces_generate(self):
        specs = trace_collection(3, footprint_sectors=FOOTPRINT, requests=500)
        for s in specs:
            t = VDIWorkloadGenerator(s).generate()
            assert len(t) == 500
            measured = across_page_ratio(t, 8192)
            assert measured == pytest.approx(s.across_ratio, abs=0.06)


class TestRngStreamEquivalence:
    """The generator hot path replaces ``Generator.choice`` with
    CDF + ``bisect_right`` (weighted picks) and ``Generator.integers``
    (uniform picks).  These draws MUST consume the identical RNG stream
    and return the identical values, or every golden report and bench
    digest built from generated traces silently changes.  Pin the
    equivalences numerically."""

    def test_weighted_choice_equals_cdf_bisect(self):
        from bisect import bisect_right

        from repro.traces.synthetic import _weights_cdf

        weights = np.array([0.05, 0.3, 0.02, 0.43, 0.2])
        p = weights / weights.sum()
        cdf = _weights_cdf(weights)
        a = np.random.default_rng(123)
        b = np.random.default_rng(123)
        for _ in range(2000):
            assert int(a.choice(len(p), p=p)) == bisect_right(cdf, b.random())
        # both streams are at the same position afterwards
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_uniform_choice_equals_integers(self):
        arr = np.array([8, 12, 16])
        a = np.random.default_rng(77)
        b = np.random.default_rng(77)
        for _ in range(2000):
            assert int(a.choice(arr)) == int(arr[b.integers(len(arr))])
        assert a.integers(1 << 30) == b.integers(1 << 30)

    def test_generate_digest_pinned(self):
        """End-to-end pin: the optimized generator still produces this
        exact trace (sha256 over all four arrays)."""
        import hashlib

        t = generate_trace(spec(requests=2500, seed=11))
        h = hashlib.sha256()
        for arr in (t.times, t.ops, t.offsets, t.sizes):
            h.update(np.ascontiguousarray(arr).tobytes())
        assert h.hexdigest() == (
            "5d77dc0283bf82c4a2cc56abd18c9a48a31d6d4507f1fa349229c4fc649970c5"
        )
