"""Bench-gate smoke tests: the CLI runs, writes well-formed JSON, and
``--check`` fails on doctored baselines.

The full scenario set takes seconds; these tests shrink it to the one
cheapest scenario via monkeypatching, which also proves the gate logic
is independent of the pinned set.
"""

import json

import pytest

from repro import cli
from repro.experiments import benchgate


@pytest.fixture
def one_scenario(monkeypatch):
    """Shrink the pinned set to its cheapest member for smoke speed."""
    small = tuple(
        sc for sc in benchgate.scenarios() if sc.name == "faults-stress-ftl"
    )
    assert small
    monkeypatch.setattr(benchgate, "scenarios", lambda: small)
    return small[0]


def _run(tmp_path, argv):
    out = tmp_path / "bench.json"
    rc = benchgate.main(["--out", str(out), *argv])
    doc = json.loads(out.read_text()) if out.exists() else None
    return rc, doc


def test_bench_writes_wellformed_json(tmp_path, one_scenario):
    rc, doc = _run(tmp_path, [])
    assert rc == 0
    assert doc["format"] == 1
    assert doc["calibration_score"] > 0
    (entry,) = doc["scenarios"]
    assert entry["name"] == one_scenario.name
    assert entry["requests"] > 0
    assert entry["requests_per_second"] > 0
    assert entry["normalized_throughput"] > 0
    assert len(entry["digest"]) == 64
    # deterministic simulation: a second run reproduces the digest
    rc2, doc2 = _run(tmp_path, [])
    assert doc2["scenarios"][0]["digest"] == entry["digest"]


def test_check_passes_against_own_output(tmp_path, one_scenario):
    rc, doc = _run(tmp_path, [])
    # halve the recorded throughput: the smoke scenario runs in ~0.1 s,
    # where scheduler noise alone can exceed the 15% gate — digest
    # equality (bit-identical reports) is the assertion that matters
    doc["scenarios"][0]["normalized_throughput"] *= 0.5
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(doc))
    rc, _ = _run(tmp_path, ["--check", "--baseline", str(baseline)])
    assert rc == 0


def test_check_fails_on_doctored_digest(tmp_path, one_scenario):
    rc, doc = _run(tmp_path, [])
    doc["scenarios"][0]["digest"] = "0" * 64
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(doc))
    rc, _ = _run(tmp_path, ["--check", "--baseline", str(baseline)])
    assert rc != 0


def test_check_fails_on_throughput_regression(tmp_path, one_scenario):
    rc, doc = _run(tmp_path, [])
    # pretend the baseline machine was 100x faster than this run
    doc["scenarios"][0]["normalized_throughput"] *= 100
    baseline = tmp_path / "baseline.json"
    baseline.write_text(json.dumps(doc))
    rc, _ = _run(tmp_path, ["--check", "--baseline", str(baseline)])
    assert rc != 0


def test_check_fails_on_missing_baseline(tmp_path, one_scenario):
    rc, _ = _run(tmp_path, ["--check", "--baseline", str(tmp_path / "nope.json")])
    assert rc != 0


def test_compare_reports_set_mismatches():
    base = {"scenarios": [{"name": "a", "digest": "x", "requests": 1,
                           "total_flash_reads": 1, "total_flash_writes": 1,
                           "erases": 0, "normalized_throughput": 1.0}]}
    cur = {"scenarios": [{"name": "b", "digest": "x", "requests": 1,
                          "total_flash_reads": 1, "total_flash_writes": 1,
                          "erases": 0, "normalized_throughput": 1.0}]}
    problems = benchgate.compare(base, cur)
    assert any("not present in baseline" in p for p in problems)
    assert any("missing from current run" in p for p in problems)


class _FakeScenario:
    """Stand-in with a constant report: lets the measurement-loop
    tests script wall times without running a simulation."""

    name = "fake"
    scheme = "ftl"

    def run(self, *, batch=False):
        from types import SimpleNamespace

        return SimpleNamespace(
            requests=100,
            counters=SimpleNamespace(
                total_reads=1, total_writes=2, erases=0
            ),
        )


def _fake_measure_env(monkeypatch, clock_values, digests):
    it = iter(clock_values)
    monkeypatch.setattr(benchgate.time, "perf_counter", lambda: next(it))
    monkeypatch.setattr(benchgate, "calibrate", lambda: 100.0)
    monkeypatch.setattr(benchgate, "scenarios", lambda: (_FakeScenario(),))
    dg = iter(digests)
    monkeypatch.setattr(benchgate, "report_digest", lambda _r: next(dg))


def test_measure_keeps_best_wall_of_passes(monkeypatch):
    """Each scenario keeps the fastest pass: a one-off background blip
    (the slow pass 1 here) must not depress the recorded throughput."""
    _fake_measure_env(
        monkeypatch,
        clock_values=[0.0, 5.0, 100.0, 102.0],  # walls: 5.0 then 2.0
        digests=["d" * 64] * 2,
    )
    doc = benchgate.measure(passes=2)
    (entry,) = doc["scenarios"]
    assert entry["wall_seconds"] == pytest.approx(2.0)
    assert entry["requests_per_second"] == pytest.approx(50.0)


def test_measure_raises_on_digest_drift(monkeypatch):
    """The repeat passes double as a determinism check: a digest that
    changes between passes is a bug, not a candidate for best-of."""
    _fake_measure_env(
        monkeypatch,
        clock_values=[0.0, 1.0, 2.0, 3.0],
        digests=["a" * 64, "b" * 64],
    )
    with pytest.raises(RuntimeError, match="non-deterministic"):
        benchgate.measure(passes=2)


def test_bench_batch_flag_same_digest(tmp_path, one_scenario):
    """--batch changes the execution strategy, never the digest."""
    rc, doc = _run(tmp_path, [])
    rc_b, doc_b = _run(tmp_path, ["--batch"])
    assert rc == rc_b == 0
    assert doc_b["scenarios"][0]["digest"] == doc["scenarios"][0]["digest"]


def test_repro_bench_cli(tmp_path, one_scenario, monkeypatch):
    """`repro bench` wires through to the same gate logic."""
    out = tmp_path / "cli.json"
    rc = cli.main(["bench", "--out", str(out)])
    assert rc == 0
    doc = json.loads(out.read_text())
    assert doc["scenarios"][0]["name"] == one_scenario.name
    # and --check against a doctored baseline exits nonzero
    doc["scenarios"][0]["erases"] += 1
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps(doc))
    rc = cli.main([
        "bench", "--out", str(out), "--check", "--baseline", str(bad),
    ])
    assert rc != 0
