"""Fleet-scale composition and per-tenant QoS (repro.fleet)."""

import numpy as np
import pytest

from repro.config import SimConfig, SSDConfig
from repro.errors import ConfigError, ReproError
from repro.experiments.runner import run_trace
from repro.fleet import (
    FleetConfig,
    aggregate_qos,
    compose_shards,
    fleet_summary,
    shard_of,
    tenant_weights,
)
from repro.fleet.workload import tenant_requests
from repro.metrics.report import SimulationReport


@pytest.fixture(scope="module")
def fleet_cfg():
    return FleetConfig(shards=2, tenants=6, requests_per_tenant=60, seed=7)


@pytest.fixture(scope="module")
def ssd_cfg():
    return SSDConfig.tiny()


@pytest.fixture(scope="module")
def plans(fleet_cfg, ssd_cfg):
    return compose_shards(fleet_cfg, ssd_cfg)


class TestConfig:
    def test_defaults_validate(self):
        FleetConfig().validate()

    def test_round_trip(self, fleet_cfg):
        assert FleetConfig.from_dict(fleet_cfg.to_dict()) == fleet_cfg

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError, match="unknown FleetConfig"):
            FleetConfig.from_dict({"shardz": 3})

    @pytest.mark.parametrize("bad", [
        {"shards": 0},
        {"tenants": 0},
        {"shard_by": "rack"},
        {"requests_per_tenant": 0},
        {"zipf_s": 0.0},
        {"scheme": "bogus"},
        {"write_ratio": 1.5},
        {"mean_write_kb": 0.0},
        {"interarrival_ms": 0.0},
        {"tenant_sectors": -1},
    ])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ConfigError):
            FleetConfig(**bad).validate()


class TestRouting:
    def test_deterministic_across_calls(self, fleet_cfg):
        a = [shard_of(t, fleet_cfg) for t in range(fleet_cfg.tenants)]
        b = [shard_of(t, fleet_cfg) for t in range(fleet_cfg.tenants)]
        assert a == b

    def test_deterministic_across_processes(self, fleet_cfg):
        """blake2b routing, not Python's per-process-randomised hash."""
        import subprocess
        import sys

        code = (
            "from repro.fleet import FleetConfig, shard_of;"
            f"cfg = FleetConfig(shards=2, tenants=6, seed=7);"
            "print([shard_of(t, cfg) for t in range(6)])"
        )
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, check=True,
            env={"PYTHONPATH": "src", "PYTHONHASHSEED": "random"},
        ).stdout.strip()
        here = str([shard_of(t, fleet_cfg) for t in range(6)])
        assert out == here

    def test_in_range(self, fleet_cfg):
        for t in range(fleet_cfg.tenants):
            assert 0 <= shard_of(t, fleet_cfg) < fleet_cfg.shards

    def test_lba_banding_is_contiguous(self):
        cfg = FleetConfig(shards=3, tenants=9, shard_by="lba")
        shards = [shard_of(t, cfg) for t in range(9)]
        assert shards == sorted(shards)
        assert set(shards) == {0, 1, 2}

    def test_out_of_range_tenant_rejected(self, fleet_cfg):
        with pytest.raises(ConfigError):
            shard_of(fleet_cfg.tenants, fleet_cfg)


class TestPopularity:
    def test_weights_normalised(self, fleet_cfg):
        w = tenant_weights(fleet_cfg)
        assert len(w) == fleet_cfg.tenants
        assert abs(w.sum() - 1.0) < 1e-12
        assert (w > 0).all()

    def test_weights_are_skewed(self):
        cfg = FleetConfig(tenants=100, zipf_s=1.1)
        w = np.sort(tenant_weights(cfg))[::-1]
        # top-10% of tenants carry well over their proportional share
        assert w[:10].sum() > 0.4

    def test_every_tenant_issues_requests(self, fleet_cfg):
        counts = tenant_requests(fleet_cfg)
        assert (counts >= 1).all()
        total = fleet_cfg.requests_per_tenant * fleet_cfg.tenants
        assert abs(int(counts.sum()) - total) <= fleet_cfg.tenants


class TestComposer:
    def test_every_tenant_lands_once(self, plans, fleet_cfg):
        seen = [t for p in plans for t in p.tenant_ids]
        assert sorted(seen) == list(range(fleet_cfg.tenants))

    def test_offsets_stay_in_tenant_slices(self, plans):
        for plan in plans:
            if not plan.tenant_ids:
                continue
            idx = np.searchsorted(
                np.asarray(plan.boundaries), plan.trace.offsets,
                side="right",
            )
            # every request falls in an owned stream, never the remainder
            assert int(idx.max()) < len(plan.tenant_ids)

    def test_boundaries_page_aligned(self, plans, ssd_cfg):
        spp = ssd_cfg.page_size_bytes // 512
        for plan in plans:
            assert all(b % spp == 0 for b in plan.boundaries)
            assert plan.slice_sectors % spp == 0

    def test_deterministic(self, fleet_cfg, ssd_cfg, plans):
        again = compose_shards(fleet_cfg, ssd_cfg)
        for a, b in zip(plans, again):
            assert a.tenant_ids == b.tenant_ids
            assert a.boundaries == b.boundaries
            assert np.array_equal(a.trace.offsets, b.trace.offsets)
            assert np.array_equal(a.trace.times, b.trace.times)

    def test_too_many_tenants_rejected(self, ssd_cfg):
        cfg = FleetConfig(shards=1, tenants=10**6, requests_per_tenant=1)
        with pytest.raises(ConfigError, match="do not fit"):
            compose_shards(cfg, ssd_cfg)


class TestQos:
    @pytest.fixture(scope="class")
    def reports(self, plans, fleet_cfg, ssd_cfg):
        out = []
        for plan in plans:
            sim_cfg = SimConfig(qos_streams=plan.boundaries)
            out.append(
                run_trace(fleet_cfg.scheme, plan.trace, ssd_cfg, sim_cfg)
            )
        return out

    def test_every_tenant_has_qos(self, plans, reports, fleet_cfg):
        qos = aggregate_qos(plans, reports)
        assert sorted(qos) == list(range(fleet_cfg.tenants))

    def test_request_counts_add_up(self, plans, reports):
        qos = aggregate_qos(plans, reports)
        per_shard = {p.shard_id: len(p.trace) for p in plans}
        for sid, total in per_shard.items():
            got = sum(
                r.requests for r in qos.values() if r.shard_id == sid
            )
            assert got == total

    def test_round_trip_through_report_json(self, plans, reports):
        """QoS survives the store: to_json → from_json → same rows."""
        direct = aggregate_qos(plans, reports)
        revived = [
            SimulationReport.from_json(r.to_json()) for r in reports
        ]
        assert aggregate_qos(plans, revived) == direct

    def test_latencies_positive(self, plans, reports):
        qos = aggregate_qos(plans, reports)
        for row in qos.values():
            assert row.requests > 0
            assert row.p99_ms >= row.p50_ms >= 0.0
            assert row.throughput_rps > 0.0

    def test_summary_rollup(self, plans, reports):
        qos = aggregate_qos(plans, reports)
        s = fleet_summary(qos)
        assert s["tenants"] == len(qos)
        assert s["requests"] == sum(r.requests for r in qos.values())
        assert s["worst_p99_ms"] == max(r.p99_ms for r in qos.values())
        assert s["worst_p99_tenant"] in qos

    def test_empty_summary(self):
        assert fleet_summary({})["tenants"] == 0

    def test_missing_streams_section_raises(self, plans, reports):
        stripped = [
            SimulationReport.from_dict(
                {k: v for k, v in r.to_dict().items() if k != "streams"}
            )
            for r in reports
        ]
        with pytest.raises(ReproError, match="no streams section"):
            aggregate_qos(plans, stripped)

    def test_failed_shard_contributes_nothing(self, plans, reports):
        qos = aggregate_qos(plans, [reports[0]] + [None] * (len(plans) - 1))
        assert set(qos) == set(plans[0].tenant_ids)

    def test_mismatched_lengths_rejected(self, plans, reports):
        with pytest.raises(ReproError):
            aggregate_qos(plans, reports[:-1])
