"""Property-based tests on sector/page arithmetic and masks."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ftl.base import iter_bits, mask_range
from repro.units import (
    is_across_page,
    lpn_range,
    spans_pages,
    split_extent,
)

spps = st.sampled_from([8, 16, 32])
offsets = st.integers(min_value=0, max_value=10_000)
sizes = st.integers(min_value=1, max_value=200)


@given(offsets, sizes, spps)
def test_split_extent_partitions(offset, size, spp):
    pieces = list(split_extent(offset, size, spp))
    # pieces tile the extent exactly, in order, without overlap
    cursor = offset
    for lpn, rel, count in pieces:
        assert count >= 1
        assert lpn * spp + rel == cursor
        assert rel + count <= spp
        cursor += count
    assert cursor == offset + size
    assert len(pieces) == spans_pages(offset, size, spp)


@given(offsets, sizes, spps)
def test_lpn_range_consistent(offset, size, spp):
    first, last = lpn_range(offset, size, spp)
    assert first == offset // spp
    assert last - first >= 1
    # every sector of the extent falls inside [first, last)
    assert (offset + size - 1) // spp == last - 1


@given(offsets, sizes, spps)
def test_across_page_definition(offset, size, spp):
    expected = size <= spp and spans_pages(offset, size, spp) == 2
    assert is_across_page(offset, size, spp) == expected


@given(offsets, sizes, spps)
def test_across_implies_two_pieces_each_partial(offset, size, spp):
    if is_across_page(offset, size, spp):
        pieces = list(split_extent(offset, size, spp))
        assert len(pieces) == 2
        # neither piece can be a full page unless size == spp exactly
        assert pieces[0][2] < spp and pieces[1][2] < spp or size == spp


@given(st.integers(0, 63), st.integers(0, 63))
def test_mask_range_bits(lo, hi):
    if lo > hi:
        lo, hi = hi, lo
    m = mask_range(lo, hi)
    assert bin(m).count("1") == hi - lo
    assert list(iter_bits(m)) == list(range(lo, hi))


@given(st.integers(min_value=0, max_value=2**64 - 1))
@settings(max_examples=200)
def test_iter_bits_matches_binary(mask):
    bits = list(iter_bits(mask))
    assert bits == [i for i in range(64) if mask >> i & 1]
    assert bits == sorted(bits)
