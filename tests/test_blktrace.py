"""blktrace/blkparse text parser."""

import gzip

import pytest

from repro.errors import TraceFormatError
from repro.traces.blktrace import load_blktrace
from repro.traces.model import OP_READ, OP_TRIM, OP_WRITE

SAMPLE = """\
8,0    3       11     0.009507758   697  Q   W 223490 + 8 [kworker]
8,0    3       12     0.009510831   697  D   W 223490 + 8 [kworker]
8,0    1       13     0.010100000   698  Q   R 1024 + 16 [fio]
8,0    1       14     0.010200000   698  Q  RS 2048 + 8 [fio]
8,0    1       15     0.011000000   698  Q   D 4096 + 64 [fstrim]
8,0    1       16     0.012000000   698  C   W 223490 + 8 [0]
CPU3 (8,0):
 Reads Queued:           2,        12KiB
"""


@pytest.fixture
def sample_file(tmp_path):
    p = tmp_path / "trace.txt"
    p.write_text(SAMPLE)
    return p


class TestParse:
    def test_queue_events(self, sample_file):
        t = load_blktrace(sample_file)
        # 4 Q events: W, R, RS, D(iscard)
        assert len(t) == 4
        assert list(t.ops) == [OP_WRITE, OP_READ, OP_READ, OP_TRIM]
        assert t.offsets[0] == 223490 and t.sizes[0] == 8

    def test_issue_events(self, sample_file):
        t = load_blktrace(sample_file, event="D")
        assert len(t) == 1
        assert t.ops[0] == OP_WRITE

    def test_trim_excluded(self, sample_file):
        t = load_blktrace(sample_file, include_trim=False)
        assert len(t) == 3
        assert OP_TRIM not in set(t.ops.tolist())

    def test_times_rebased_ms(self, sample_file):
        t = load_blktrace(sample_file)
        assert t.times[0] == pytest.approx(0.0)
        assert t.times[1] - t.times[0] == pytest.approx(0.5923, abs=1e-3)

    def test_gzip(self, tmp_path):
        p = tmp_path / "trace.txt.gz"
        p.write_bytes(gzip.compress(SAMPLE.encode()))
        assert len(load_blktrace(p)) == 4

    def test_bad_event_choice(self, sample_file):
        with pytest.raises(TraceFormatError):
            load_blktrace(sample_file, event="C")

    def test_empty_file(self, tmp_path):
        p = tmp_path / "e.txt"
        p.write_text("CPU0 (8,0):\n")
        with pytest.raises(TraceFormatError):
            load_blktrace(p)

    def test_summary_lines_skipped(self, sample_file):
        # the trailing "Reads Queued" block must not break parsing
        t = load_blktrace(sample_file)
        assert len(t) == 4
