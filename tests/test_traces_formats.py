"""SYSTOR'17 and MSR trace parsers (round trips and error paths)."""

import gzip

import numpy as np
import pytest

from repro.errors import TraceFormatError
from repro.traces.model import OP_READ, OP_WRITE, Trace
from repro.traces.msr import load_msr
from repro.traces.systor import load_systor, save_systor


@pytest.fixture
def sample_trace():
    return Trace(
        "sample",
        np.array([0.0, 10.0, 20.0]),
        np.array([OP_WRITE, OP_READ, OP_WRITE], np.uint8),
        np.array([2056, 0, 128], np.int64),
        np.array([12, 16, 8], np.int64),
    )


class TestSystor:
    def test_roundtrip(self, tmp_path, sample_trace):
        p = tmp_path / "t.csv"
        save_systor(sample_trace, p)
        back = load_systor(p)
        assert len(back) == 3
        assert list(back.ops) == list(sample_trace.ops)
        assert list(back.offsets) == list(sample_trace.offsets)
        assert list(back.sizes) == list(sample_trace.sizes)
        assert back.times[1] - back.times[0] == pytest.approx(10.0)

    def test_gzip_supported(self, tmp_path, sample_trace):
        plain = tmp_path / "t.csv"
        save_systor(sample_trace, plain)
        gz = tmp_path / "t.csv.gz"
        gz.write_bytes(gzip.compress(plain.read_bytes()))
        back = load_systor(gz)
        assert len(back) == 3

    def test_skips_non_rw(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text(
            "Timestamp,Response,IOType,LUN,Offset,Size\n"
            "0.0,0.0,W,0,0,4096\n"
            "0.1,0.0,U,0,4096,4096\n"  # unmap: skipped
            "0.2,0.0,R,0,0,4096\n"
        )
        t = load_systor(p)
        assert len(t) == 2

    def test_headerless(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("0.0,0.0,W,0,0,4096\n")
        t = load_systor(p)
        assert len(t) == 1
        assert t.sizes[0] == 8

    def test_unaligned_bytes_rounded_to_sectors(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text(
            "Timestamp,Response,IOType,LUN,Offset,Size\n0.0,0.0,W,0,100,1000\n"
        )
        t = load_systor(p)
        # offset 100 -> sector 0; end 1100 -> sector 3 (ceil)
        assert t.offsets[0] == 0 and t.sizes[0] == 3

    def test_malformed_field_count(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("Timestamp,Response,IOType,LUN,Offset,Size\n1,2,3\n")
        with pytest.raises(TraceFormatError):
            load_systor(p)

    def test_bad_number(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text(
            "Timestamp,Response,IOType,LUN,Offset,Size\nxx,0.0,W,0,0,4096\n"
        )
        with pytest.raises(TraceFormatError):
            load_systor(p)

    def test_empty_file(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("")
        with pytest.raises(TraceFormatError):
            load_systor(p)

    def test_no_usable_requests(self, tmp_path):
        p = tmp_path / "t.csv"
        p.write_text("Timestamp,Response,IOType,LUN,Offset,Size\n")
        with pytest.raises(TraceFormatError):
            load_systor(p)


class TestMSR:
    def test_parse(self, tmp_path):
        p = tmp_path / "m.csv"
        p.write_text(
            "128166372003061629,host,0,Write,4096,8192,100\n"
            "128166372013061629,host,0,Read,0,4096,50\n"
        )
        t = load_msr(p)
        assert len(t) == 2
        assert t.ops[0] == OP_WRITE
        assert t.offsets[0] == 8 and t.sizes[0] == 16
        assert t.times[1] - t.times[0] == pytest.approx(1000.0)

    def test_skips_header_and_unknown(self, tmp_path):
        p = tmp_path / "m.csv"
        p.write_text(
            "Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n"
            "1,h,0,Write,0,512,1\n"
            "2,h,0,Flush,0,512,1\n"
        )
        t = load_msr(p)
        assert len(t) == 1

    def test_too_few_fields(self, tmp_path):
        p = tmp_path / "m.csv"
        p.write_text("1,h,0,Write\n")
        with pytest.raises(TraceFormatError):
            load_msr(p)

    def test_empty(self, tmp_path):
        p = tmp_path / "m.csv"
        p.write_text("")
        with pytest.raises(TraceFormatError):
            load_msr(p)
