"""SVG chart rendering (repro.experiments.charts)."""

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.charts import (
    chart_section,
    grouped_bar_svg,
    legend_html,
    table_html,
)

SVG_NS = "{http://www.w3.org/2000/svg}"


def parse(svg: str) -> ET.Element:
    return ET.fromstring(svg)


@pytest.fixture
def series():
    return {
        "ftl": [1.0, 1.0],
        "mrsm": [1.2, 1.1],
        "across": [0.9, 0.85],
    }


class TestGroupedBar:
    def test_valid_xml(self, series):
        root = parse(grouped_bar_svg(["lun1", "lun2"], series))
        assert root.tag.endswith("svg")

    def test_one_bar_per_series_per_group(self, series):
        root = parse(grouped_bar_svg(["lun1", "lun2"], series, baseline=1.0))
        bars = root.findall(f"{SVG_NS}path")
        assert len(bars) == 6  # 2 groups x 3 series

    def test_bars_have_tooltips(self, series):
        root = parse(grouped_bar_svg(["lun1", "lun2"], series))
        titles = root.findall(f"{SVG_NS}path/{SVG_NS}title")
        assert len(titles) == 6
        assert "lun1" in titles[0].text and "ftl" in titles[0].text

    def test_scheme_colors_fixed_regardless_of_subset(self):
        # "across" keeps slot 3 even when it is the only series shown
        root = parse(grouped_bar_svg(["a"], {"across": [0.5]}))
        fills = [p.get("fill") for p in root.findall(f"{SVG_NS}path")]
        assert fills == ["var(--series-3)"]

    def test_gridlines_recessive(self, series):
        svg = grouped_bar_svg(["a", "b"], series)
        assert 'stroke="var(--grid)"' in svg
        assert "dasharray" not in svg.replace('stroke-dasharray="none"', "")

    def test_labels_use_text_tokens_not_series_colors(self, series):
        root = parse(grouped_bar_svg(["a", "b"], series))
        for text in root.findall(f"{SVG_NS}text"):
            assert text.get("fill") == "var(--text-secondary)"

    def test_bar_width_capped(self):
        import re

        svg = grouped_bar_svg(["only"], {"ftl": [1.0]}, width=720)
        root = parse(svg)
        path_d = root.find(f"{SVG_NS}path").get("d")
        xs = [float(x) for x in re.findall(r"[MQH]([\d.]+)", path_d)]
        assert xs, path_d
        assert max(xs) - min(xs) <= 24.0 + 1e-6


class TestLegendAndTable:
    def test_legend_present_for_multi_series(self, series):
        html = legend_html(list(series))
        assert html.count("<span>") == 3
        assert "--series-2" in html

    def test_no_legend_for_single_series(self):
        assert legend_html(["across"]) == ""

    def test_table_contains_all_values(self, series):
        html = table_html(["lun1", "lun2"], series)
        assert "1.200" in html and "0.850" in html
        assert html.count("<tr>") == 3  # header handled separately

    def test_section_combines_everything(self, series):
        html = chart_section("T", "note", ["a", "b"], series, baseline=1.0)
        assert "<h2>T</h2>" in html
        assert "<svg" in html and "viz-table" in html and "viz-legend" in html

    def test_escaping(self):
        html = chart_section(
            "<script>", "x & y", ["<cat>"], {"ftl": [1.0]}
        )
        assert "<script>" not in html
        assert "&lt;script&gt;" in html


class TestReport:
    def test_report_on_micro_context(self):
        from repro.config import SimConfig, SSDConfig
        from repro.experiments.charts import render_report_html
        from repro.experiments.runner import ExperimentContext

        cfg = SSDConfig(
            channels=2,
            chips_per_channel=2,
            dies_per_chip=1,
            planes_per_die=2,
            blocks_per_plane=32,
            pages_per_block=16,
            page_size_bytes=8 * 1024,
            write_buffer_bytes=512 * 1024,
        )
        ctx = ExperimentContext(
            cfg=cfg,
            sim_cfg=SimConfig(aged_used=0.5, aged_valid=0.3),
            scale=0.002,
        )
        html = render_report_html(ctx)
        assert "<!doctype html>" in html
        assert html.count("<svg") == 6
        assert "prefers-color-scheme: dark" in html
        assert "Fig. 11" in html
        # every chart ships its table (relief rule)
        assert html.count("viz-table") >= 6
