"""Event bus (repro.obs.events): dispatch order and disabled-mode cost."""

import numpy as np
import pytest

from repro.config import SimConfig, SSDConfig
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.obs.events import (
    DECISION_PATHS,
    EventBus,
    FlashOp,
    FTLDecision,
    GCStall,
    RequestArrive,
    RequestComplete,
)
from repro.sim.engine import Simulator
from repro.traces.model import Trace


def _bus_events():
    return [
        RequestArrive(0.0, 0, 1, 0, 8, False),
        FTLDecision(0.1, 0, "page_write", 0),
        RequestComplete(0.5, 0, 0.5),
    ]


class TestDispatch:
    def test_typed_subscribers_see_only_their_type(self):
        bus = EventBus()
        got = []
        bus.subscribe(FTLDecision, got.append)
        for ev in _bus_events():
            bus.emit(ev)
        assert [type(e) for e in got] == [FTLDecision]
        assert got[0].path == "page_write"

    def test_wildcard_sees_everything_after_typed(self):
        bus = EventBus()
        order = []
        bus.subscribe(RequestArrive, lambda e: order.append("typed"))
        bus.subscribe(None, lambda e: order.append("any"))
        bus.emit(RequestArrive(0.0, 0, 1, 0, 8, False))
        assert order == ["typed", "any"]

    def test_subscription_order_within_a_type(self):
        bus = EventBus()
        order = []
        bus.subscribe(GCStall, lambda e: order.append("first"))
        bus.subscribe(GCStall, lambda e: order.append("second"))
        bus.emit(GCStall(1.0, 0, 2))
        assert order == ["first", "second"]

    def test_emit_counts_events(self):
        bus = EventBus()
        for ev in _bus_events():
            bus.emit(ev)
        assert bus.events_emitted == 3

    def test_events_are_frozen(self):
        ev = FlashOp(0.0, 3, "read", "data", 1, 0.05, 42)
        with pytest.raises(AttributeError):
            ev.chip = 2

    def test_decision_paths_closed_vocabulary(self):
        assert "direct" in DECISION_PATHS
        assert "amerge" in DECISION_PATHS
        assert len(set(DECISION_PATHS)) == len(DECISION_PATHS)


def _small_trace(n=300, seed=7):
    rng = np.random.default_rng(seed)
    return Trace(
        "obs-equiv",
        np.sort(rng.uniform(0, 2000, n)),
        rng.integers(0, 2, n).astype(np.uint8),
        (rng.integers(0, 2000, n) * 4).astype(np.int64),
        rng.integers(1, 24, n).astype(np.int64),
    )


def _run(sim_cfg):
    svc = FlashService(SSDConfig.tiny())
    ftl = make_ftl("across", svc)
    sim = Simulator(ftl, sim_cfg)
    return sim, sim.run(_small_trace())


class TestDisabledMode:
    def test_hooks_stay_none_when_disabled(self):
        sim, _ = _run(SimConfig())
        assert sim.obs is None
        assert sim.ftl.service.obs is None
        assert sim.cache is None or sim.cache.obs is None

    def test_enabled_run_is_bit_identical_to_disabled(self):
        """Observation must not perturb the simulation: every counter
        and latency must match with the bus on and off."""
        _, off = _run(SimConfig())
        cfg = SimConfig()
        cfg = cfg.replace_observability(
            enabled=True, trace=True, sample_interval_ms=5.0
        )
        sim_on, on = _run(cfg)
        assert on.counters.snapshot() == off.counters.snapshot()
        assert on.latency.total_ms == pytest.approx(off.latency.total_ms)
        assert sim_on.obs.bus.events_emitted > 0

    def test_disabled_overhead_is_one_branch(self):
        """The instrumented hot path is `obs = self.obs; if obs is not
        None` — with observability off no event object is ever built."""
        sim, rep = _run(SimConfig())
        # no bus exists, so nothing can have been emitted or allocated
        assert sim._bus is None
        assert "obs_events" not in rep.extra
