"""The README's python examples must actually run."""

import re
from pathlib import Path

import pytest

README = Path(__file__).parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_with_key_sections():
    text = README.read_text()
    for section in ("## Install", "## Quickstart", "## Architecture",
                    "## Reproducing the paper", "## Examples"):
        assert section in text, section


@pytest.mark.slow
@pytest.mark.parametrize("idx", range(len(python_blocks())))
def test_readme_python_blocks_execute(idx):
    code = python_blocks()[idx]
    # shrink any workload knobs so the doc snippet runs in seconds
    code = code.replace("8_000", "800")
    namespace: dict = {}
    exec(compile(code, f"README-block-{idx}", "exec"), namespace)


def test_docstring_quickstart_runs():
    import repro

    doc = repro.__doc__
    m = re.search(r"Quickstart::\n\n(.*?)(?:\n\S|\Z)", doc, flags=re.DOTALL)
    assert m, "package docstring lost its quickstart"
    code = "\n".join(
        line[4:] if line.startswith("    ") else line
        for line in m.group(1).splitlines()
    )
    code = code.replace("5_000", "500")
    exec(compile(code, "repro-docstring", "exec"), {})
