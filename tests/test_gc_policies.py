"""GC policy zoo: selection, scheduling and wear-levelling behaviour."""

import pytest

from repro.config import SSDConfig
from repro.errors import ConfigError
from repro.flash.service import FlashService
from repro.flash.wear import projected_lifetime_writes, wear_stats
from repro.ftl.gc import GC_POLICIES, GarbageCollector
from repro.ftl.gc_policy import GcPolicy, make_policy
from repro.ftl.pagemap import PageMapFTL


def run_hot_cold(policy: str, cfg):
    """Hot/cold overwrite workload; returns (service, ftl)."""
    cfg = cfg.replace(gc_policy=policy)
    svc = FlashService(cfg)
    ftl = PageMapFTL(svc)
    spp = ftl.spp
    hot = max(4, ftl.logical_pages // 8)
    cold = hot  # one pass over a cold region first
    for lpn in range(cold):
        ftl.write((hot + lpn) * spp, spp, 0.0)
    for i in range(3 * svc.geom.num_pages):
        ftl.write((i % hot) * spp, spp, 0.0)
    return svc, ftl


class TestPolicySelection:
    def test_unknown_policy_rejected(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = PageMapFTL(svc)
        with pytest.raises(ValueError):
            GarbageCollector(svc, ftl.allocator, ftl._relocate, 0.1, 0.12,
                             policy="nope")

    def test_config_validates_policy(self):
        with pytest.raises(ConfigError):
            SSDConfig(gc_policy="bogus").validate()

    def test_policies_constant(self):
        assert GC_POLICIES == (
            "greedy",
            "cost_benefit",
            "wear_aware",
            "windowed_greedy",
            "preemptive",
            "hot_cold",
            "dual_pool",
        )

    def test_make_policy_registry(self, micro_cfg):
        for name in GC_POLICIES:
            policy = make_policy(name, micro_cfg)
            assert isinstance(policy, GcPolicy)
            assert policy.name == name
        with pytest.raises(ValueError):
            make_policy("nope", micro_cfg)

    def test_collector_accepts_policy_object(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = PageMapFTL(svc)
        gc = GarbageCollector(
            svc, ftl.allocator, ftl._relocate, 0.1, 0.12,
            policy=make_policy("cost_benefit", micro_cfg),
        )
        assert gc.policy == "cost_benefit"


class TestAllPoliciesWork:
    @pytest.mark.parametrize("policy", GC_POLICIES)
    def test_policy_survives_pressure(self, policy, micro_cfg):
        svc, ftl = run_hot_cold(policy, micro_cfg)
        assert svc.counters.erases > 0
        ftl.check_invariants()
        svc.array.check_invariants()

    @pytest.mark.parametrize("policy", GC_POLICIES)
    def test_policy_preserves_data(self, policy, micro_cfg):
        cfg = micro_cfg.replace(gc_policy=policy)
        svc = FlashService(cfg)
        ftl = PageMapFTL(svc, track_payload=True)
        spp = ftl.spp
        hot = max(4, ftl.logical_pages // 8)
        version = {}
        for i in range(2 * svc.geom.num_pages):
            lpn = i % hot
            version[lpn] = i
            ftl.write(lpn * spp, spp, 0.0,
                      {s: i for s in range(lpn * spp, (lpn + 1) * spp)})
        for lpn, v in version.items():
            _, found = ftl.read(lpn * spp, spp, 0.0)
            assert all(found[s] == v for s in range(lpn * spp, (lpn + 1) * spp))


class TestPolicyCharacter:
    def test_wear_aware_levels_wear(self, micro_cfg):
        _, greedy_ftl = run_hot_cold("greedy", micro_cfg)
        _, wear_ftl = run_hot_cold("wear_aware", micro_cfg)
        g = wear_stats(greedy_ftl.service.array)
        w = wear_stats(wear_ftl.service.array)
        # with a wear penalty the erase distribution must not be more
        # imbalanced than greedy's
        assert w.gini <= g.gini + 0.05

    def test_cost_benefit_prefers_cold_blocks(self, micro_cfg):
        """Among two equally-valid candidates, cost-benefit must pick
        the one that has been idle the longest."""
        svc = FlashService(micro_cfg.replace(gc_policy="cost_benefit"))
        ftl = PageMapFTL(svc)
        spp = ftl.spp
        ppb = svc.geom.pages_per_block
        from repro.ftl.meta import DataPageMeta

        # fill two blocks in plane 0 and invalidate one page in each,
        # the "old" block first
        for i in range(2 * ppb):
            ppn = ftl.allocator.allocate_in_plane(0)
            svc.array.program(ppn, DataPageMeta(i))
            ftl.pmt[i] = ppn
            ftl.pmt_mask[i] = (1 << spp) - 1
        b_old = svc.geom.block_of_ppn(int(ftl.pmt[0]))
        b_new = svc.geom.block_of_ppn(int(ftl.pmt[ppb]))
        svc.array.invalidate(int(ftl.pmt[0]))
        ftl.pmt[0] = -1
        ftl.pmt_mask[0] = 0
        svc.array.invalidate(int(ftl.pmt[ppb]))
        ftl.pmt[ppb] = -1
        ftl.pmt_mask[ppb] = 0
        # identical utilisation; b_old was last modified earlier, so it
        # is the older block and cost-benefit must pick it
        assert svc.array.last_mod[b_old] < svc.array.last_mod[b_new]
        victim = ftl.gc.select_victim(0)
        assert victim == b_old
        # sanity: greedy would tie-break by index as well, so also check
        # the benefit actually differs
        svc2 = ftl.gc
        assert svc2.policy == "cost_benefit"


class TestNewPolicyCharacter:
    def test_preemptive_runs_bounded_slices(self, micro_cfg):
        svc, ftl = run_hot_cold("preemptive", micro_cfg)
        gc = ftl.gc
        # the soft threshold starts collection earlier than gc_threshold
        assert gc.threshold == micro_cfg.gc_preempt_threshold
        assert gc.hard_threshold == micro_cfg.gc_threshold
        assert gc.slices > 0
        # with an 8-page budget on 8-page blocks some victims still
        # carry valid pages when picked, producing deferrals; but even
        # if every victim fit in one slice, collections must have run
        assert gc.collections > 0

    def test_preemptive_slice_budget_respected(self, micro_cfg):
        # uniform overwrites leave every block partially valid, so a
        # 2-page budget on 8-page blocks cannot finish a victim in one
        # slice: deferrals must appear
        import random

        cfg = micro_cfg.replace(gc_policy="preemptive", gc_slice_pages=2)
        svc = FlashService(cfg)
        ftl = PageMapFTL(svc)
        spp = ftl.spp
        n = ftl.logical_pages
        rng = random.Random(3)
        for _ in range(4 * svc.geom.num_pages):
            ftl.write(rng.randrange(n) * spp, spp, 0.0)
        gc = ftl.gc
        assert gc.slices > 0
        assert gc.deferrals > 0
        assert svc.counters.gc_deferrals > 0
        ftl.check_invariants()

    def test_windowed_greedy_restricts_to_window(self, micro_cfg):
        cfg = micro_cfg.replace(gc_policy="windowed_greedy", gc_window=2)
        svc, ftl = run_hot_cold("windowed_greedy", cfg)
        assert ftl.gc.policy == "windowed_greedy"
        assert svc.counters.erases > 0
        ftl.check_invariants()

    def test_hot_cold_separates_streams(self, micro_cfg):
        cfg = micro_cfg.replace(gc_policy="hot_cold")
        svc = FlashService(cfg)
        ftl = PageMapFTL(svc)
        # the policy requests stream separation without the user flag
        assert ftl.allocator.separate_streams
        svc2, ftl2 = run_hot_cold("hot_cold", micro_cfg)
        assert svc2.counters.erases > 0
        ftl2.check_invariants()

    def test_dual_pool_levels_wear(self, micro_cfg):
        cfg = micro_cfg.replace(gc_wear_gap=2)
        _, greedy_ftl = run_hot_cold("greedy", cfg)
        _, dual_ftl = run_hot_cold("dual_pool", cfg)
        assert dual_ftl.gc.wear_migrations > 0
        assert dual_ftl.gc.service.counters.wear_migrations > 0
        g = wear_stats(greedy_ftl.service.array)
        d = wear_stats(dual_ftl.service.array)
        # cold-block migration must not worsen the wear spread
        assert d.gini <= g.gini + 0.05

    def test_dual_pool_respects_gap(self, micro_cfg):
        # a gap larger than any achievable erase spread => no migrations
        cfg = micro_cfg.replace(gc_wear_gap=10_000)
        _, ftl = run_hot_cold("dual_pool", cfg)
        assert ftl.gc.wear_migrations == 0

    def test_policy_counters_round_trip(self, micro_cfg):
        from repro.metrics.counters import FlashOpCounters

        cfg = micro_cfg.replace(gc_policy="preemptive", gc_slice_pages=2)
        svc, _ = run_hot_cold("preemptive", cfg)
        snap = svc.counters.snapshot()
        assert snap["gc_slices"] == svc.counters.gc_slices
        rebuilt = FlashOpCounters.from_snapshot(snap)
        assert rebuilt.gc_slices == svc.counters.gc_slices
        assert rebuilt.gc_deferrals == svc.counters.gc_deferrals
        merged = rebuilt.merged_with(rebuilt)
        assert merged.gc_slices == 2 * svc.counters.gc_slices

    def test_greedy_snapshot_has_no_policy_keys(self, micro_cfg):
        svc, ftl = run_hot_cold("greedy", micro_cfg)
        snap = svc.counters.snapshot()
        assert "gc_slices" not in snap
        assert "gc_deferrals" not in snap
        assert "wear_migrations" not in snap
        stats = ftl.stats()
        assert "gc_policy" not in stats


class TestWearStats:
    def test_empty_device(self, micro_cfg):
        svc = FlashService(micro_cfg)
        st = wear_stats(svc.array)
        assert st.total_erases == 0 and st.gini == 0.0

    def test_after_workload(self, micro_cfg):
        svc, ftl = run_hot_cold("greedy", micro_cfg)
        st = wear_stats(svc.array)
        assert st.total_erases == svc.array.total_erases
        assert st.max >= st.mean >= st.min
        assert 0.0 <= st.gini <= 1.0
        assert "erases" in st.summary()

    def test_lifetime_projection(self, micro_cfg):
        svc, ftl = run_hot_cold("greedy", micro_cfg)
        writes = svc.counters.total_writes + svc.counters.writes[
            list(svc.counters.writes)[3]
        ]
        life = projected_lifetime_writes(svc.array, erase_limit=3000,
                                         writes_so_far=max(1, writes))
        assert life > 0

    def test_lifetime_infinite_when_unworn(self, micro_cfg):
        svc = FlashService(micro_cfg)
        assert projected_lifetime_writes(svc.array, 3000, 100) == float("inf")

    def test_bad_limit(self, micro_cfg):
        svc = FlashService(micro_cfg)
        with pytest.raises(ValueError):
            projected_lifetime_writes(svc.array, 0, 100)
