"""GC victim-selection policies (greedy / cost-benefit / wear-aware)."""

import pytest

from repro.config import SSDConfig
from repro.errors import ConfigError
from repro.flash.service import FlashService
from repro.flash.wear import projected_lifetime_writes, wear_stats
from repro.ftl.gc import GC_POLICIES, GarbageCollector
from repro.ftl.pagemap import PageMapFTL


def run_hot_cold(policy: str, cfg):
    """Hot/cold overwrite workload; returns (service, ftl)."""
    cfg = cfg.replace(gc_policy=policy)
    svc = FlashService(cfg)
    ftl = PageMapFTL(svc)
    spp = ftl.spp
    hot = max(4, ftl.logical_pages // 8)
    cold = hot  # one pass over a cold region first
    for lpn in range(cold):
        ftl.write((hot + lpn) * spp, spp, 0.0)
    for i in range(3 * svc.geom.num_pages):
        ftl.write((i % hot) * spp, spp, 0.0)
    return svc, ftl


class TestPolicySelection:
    def test_unknown_policy_rejected(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = PageMapFTL(svc)
        with pytest.raises(ValueError):
            GarbageCollector(svc, ftl.allocator, ftl._relocate, 0.1, 0.12,
                             policy="nope")

    def test_config_validates_policy(self):
        with pytest.raises(ConfigError):
            SSDConfig(gc_policy="bogus").validate()

    def test_policies_constant(self):
        assert GC_POLICIES == ("greedy", "cost_benefit", "wear_aware")


class TestAllPoliciesWork:
    @pytest.mark.parametrize("policy", GC_POLICIES)
    def test_policy_survives_pressure(self, policy, micro_cfg):
        svc, ftl = run_hot_cold(policy, micro_cfg)
        assert svc.counters.erases > 0
        ftl.check_invariants()
        svc.array.check_invariants()

    @pytest.mark.parametrize("policy", GC_POLICIES)
    def test_policy_preserves_data(self, policy, micro_cfg):
        cfg = micro_cfg.replace(gc_policy=policy)
        svc = FlashService(cfg)
        ftl = PageMapFTL(svc, track_payload=True)
        spp = ftl.spp
        hot = max(4, ftl.logical_pages // 8)
        version = {}
        for i in range(2 * svc.geom.num_pages):
            lpn = i % hot
            version[lpn] = i
            ftl.write(lpn * spp, spp, 0.0,
                      {s: i for s in range(lpn * spp, (lpn + 1) * spp)})
        for lpn, v in version.items():
            _, found = ftl.read(lpn * spp, spp, 0.0)
            assert all(found[s] == v for s in range(lpn * spp, (lpn + 1) * spp))


class TestPolicyCharacter:
    def test_wear_aware_levels_wear(self, micro_cfg):
        _, greedy_ftl = run_hot_cold("greedy", micro_cfg)
        _, wear_ftl = run_hot_cold("wear_aware", micro_cfg)
        g = wear_stats(greedy_ftl.service.array)
        w = wear_stats(wear_ftl.service.array)
        # with a wear penalty the erase distribution must not be more
        # imbalanced than greedy's
        assert w.gini <= g.gini + 0.05

    def test_cost_benefit_prefers_cold_blocks(self, micro_cfg):
        """Among two equally-valid candidates, cost-benefit must pick
        the one that has been idle the longest."""
        svc = FlashService(micro_cfg.replace(gc_policy="cost_benefit"))
        ftl = PageMapFTL(svc)
        spp = ftl.spp
        ppb = svc.geom.pages_per_block
        from repro.ftl.meta import DataPageMeta

        # fill two blocks in plane 0 and invalidate one page in each,
        # the "old" block first
        for i in range(2 * ppb):
            ppn = ftl.allocator.allocate_in_plane(0)
            svc.array.program(ppn, DataPageMeta(i))
            ftl.pmt[i] = ppn
            ftl.pmt_mask[i] = (1 << spp) - 1
        b_old = svc.geom.block_of_ppn(int(ftl.pmt[0]))
        b_new = svc.geom.block_of_ppn(int(ftl.pmt[ppb]))
        svc.array.invalidate(int(ftl.pmt[0]))
        ftl.pmt[0] = -1
        ftl.pmt_mask[0] = 0
        svc.array.invalidate(int(ftl.pmt[ppb]))
        ftl.pmt[ppb] = -1
        ftl.pmt_mask[ppb] = 0
        # identical utilisation; b_old was last modified earlier, so it
        # is the older block and cost-benefit must pick it
        assert svc.array.last_mod[b_old] < svc.array.last_mod[b_new]
        victim = ftl.gc.select_victim(0)
        assert victim == b_old
        # sanity: greedy would tie-break by index as well, so also check
        # the benefit actually differs
        svc2 = ftl.gc
        assert svc2.policy == "cost_benefit"


class TestWearStats:
    def test_empty_device(self, micro_cfg):
        svc = FlashService(micro_cfg)
        st = wear_stats(svc.array)
        assert st.total_erases == 0 and st.gini == 0.0

    def test_after_workload(self, micro_cfg):
        svc, ftl = run_hot_cold("greedy", micro_cfg)
        st = wear_stats(svc.array)
        assert st.total_erases == svc.array.total_erases
        assert st.max >= st.mean >= st.min
        assert 0.0 <= st.gini <= 1.0
        assert "erases" in st.summary()

    def test_lifetime_projection(self, micro_cfg):
        svc, ftl = run_hot_cold("greedy", micro_cfg)
        writes = svc.counters.total_writes + svc.counters.writes[
            list(svc.counters.writes)[3]
        ]
        life = projected_lifetime_writes(svc.array, erase_limit=3000,
                                         writes_so_far=max(1, writes))
        assert life > 0

    def test_lifetime_infinite_when_unworn(self, micro_cfg):
        svc = FlashService(micro_cfg)
        assert projected_lifetime_writes(svc.array, 3000, 100) == float("inf")

    def test_bad_limit(self, micro_cfg):
        svc = FlashService(micro_cfg)
        with pytest.raises(ValueError):
            projected_lifetime_writes(svc.array, 0, 100)
