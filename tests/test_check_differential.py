"""Differential replay harness (repro.check.differential)."""

import dataclasses

import pytest

from repro.check import (
    DifferentialResult,
    ReplayFailure,
    checked_sim_cfg,
    differential_replay,
)
from repro.config import SCHEMES, SimConfig, SSDConfig
from repro.sim.oracle import OracleMismatch
from repro.traces.synthetic import SyntheticSpec, generate_trace
from repro.units import MIB


@pytest.fixture(scope="module")
def diff_cfg() -> SSDConfig:
    return SSDConfig.tiny().replace(write_buffer_bytes=2 * MIB)


@pytest.fixture(scope="module")
def diff_trace(diff_cfg):
    spec = SyntheticSpec(
        "diff",
        400,
        0.6,
        0.25,
        9.0,
        footprint_sectors=int(diff_cfg.logical_sectors * 0.7),
        seed=17,
    )
    return generate_trace(spec)


class TestCheckedSimCfg:
    def test_defaults(self):
        cfg = checked_sim_cfg()
        assert cfg.check_oracle and not cfg.progress
        assert cfg.check.enabled and cfg.check.every == 256
        cfg.validate()

    def test_preserves_base_fields(self):
        base = SimConfig(seed=99, aged_used=0.5, aged_valid=0.3)
        cfg = checked_sim_cfg(base, every=64)
        assert cfg.seed == 99 and cfg.aged_used == 0.5
        assert cfg.check.every == 64


class TestDifferentialReplay:
    def test_schemes_agree(self, diff_trace, diff_cfg):
        res = differential_replay(
            diff_trace, diff_cfg, SimConfig(), every=100
        )
        assert res.ok, res.summary()
        assert set(res.read_digests) == set(SCHEMES)
        assert len(set(res.read_digests.values())) == 1
        assert "3 schemes agree" in res.summary()
        for rep in res.reports.values():
            assert rep.extra["check_sweeps"] >= 4

    def test_scheme_subset(self, diff_trace, diff_cfg):
        res = differential_replay(
            diff_trace,
            diff_cfg,
            schemes=("ftl", "across"),
            every=200,
            compare_cache=False,
        )
        assert res.ok
        assert set(res.read_digests) == {"ftl", "across"}

    def test_jobs_leg_agrees(self, diff_trace, diff_cfg):
        res = differential_replay(
            diff_trace,
            diff_cfg,
            schemes=("ftl",),
            every=200,
            compare_cache=False,
            compare_jobs=True,
        )
        assert res.ok, res.summary()


class TestFailurePaths:
    def test_oracle_mismatch_reported(self, diff_trace, diff_cfg, monkeypatch):
        import repro.experiments.runner as runner

        real = runner.run_trace

        def broken(scheme, trace, cfg, sim_cfg=None, **kw):
            if scheme == "mrsm":
                raise OracleMismatch("sector 5: expected 1, got 2")
            return real(scheme, trace, cfg, sim_cfg, **kw)

        monkeypatch.setattr(runner, "run_trace", broken)
        res = differential_replay(
            diff_trace, diff_cfg, every=200, compare_cache=False
        )
        assert not res.ok
        kinds = {(f.kind, f.scheme) for f in res.failures}
        assert ("oracle", "mrsm") in kinds
        # the healthy schemes still ran and agreed with each other
        assert set(res.read_digests) == {"ftl", "across"}
        assert len(set(res.read_digests.values())) == 1
        assert "oracle [mrsm]" in res.summary()

    def test_invariant_violation_reported(
        self, diff_trace, diff_cfg, monkeypatch
    ):
        from repro.errors import InvariantViolation

        import repro.experiments.runner as runner

        def broken(scheme, trace, cfg, sim_cfg=None, **kw):
            raise InvariantViolation("program conservation: off by one")

        monkeypatch.setattr(runner, "run_trace", broken)
        res = differential_replay(
            diff_trace, diff_cfg, schemes=("ftl",), compare_cache=False
        )
        assert [f.kind for f in res.failures] == ["invariant"]
        assert "InvariantViolation" in res.failures[0].detail

    def test_scheme_divergence_detected(
        self, diff_trace, diff_cfg, monkeypatch
    ):
        import repro.experiments.runner as runner

        real = runner.run_trace

        def skewed(scheme, trace, cfg, sim_cfg=None, **kw):
            rep = real(scheme, trace, cfg, sim_cfg, **kw)
            if scheme == "across":
                rep.extra["check_read_digest"] = "f" * 64
            return rep

        monkeypatch.setattr(runner, "run_trace", skewed)
        res = differential_replay(
            diff_trace, diff_cfg, every=200, compare_cache=False
        )
        kinds = [f.kind for f in res.failures]
        assert "scheme-divergence" in kinds

    def test_cache_divergence_detected(self, diff_trace, diff_cfg, monkeypatch):
        import repro.experiments.runner as runner

        real = runner.run_trace

        def skewed(scheme, trace, cfg, sim_cfg=None, **kw):
            rep = real(scheme, trace, cfg, sim_cfg, **kw)
            if cfg.write_buffer_bytes == 0:
                rep.extra["check_read_digest"] = "0" * 64
            return rep

        monkeypatch.setattr(runner, "run_trace", skewed)
        res = differential_replay(
            diff_trace, diff_cfg, schemes=("ftl",), every=200
        )
        kinds = [f.kind for f in res.failures]
        assert kinds == ["cache-divergence"]
        assert res.failures[0].scheme == "ftl"


class TestResultTypes:
    def test_summary_lists_failures(self):
        res = DifferentialResult(
            trace_name="t",
            failures=[ReplayFailure("oracle", "ftl", "boom")],
        )
        assert not res.ok
        assert "1 failure(s)" in res.summary()
        assert "oracle [ftl]: boom" in res.summary()

    def test_failure_is_serialisable(self):
        f = ReplayFailure("jobs-divergence", None, "digest drift")
        doc = dataclasses.asdict(f)
        assert doc == {
            "kind": "jobs-divergence",
            "scheme": None,
            "detail": "digest drift",
        }
