"""The example workload specs and scripts stay well-formed."""

import ast
import json
from pathlib import Path

import pytest

from repro.traces.workload_spec import compile_workload, validate_spec

EXAMPLES = Path(__file__).parent.parent / "examples"
SPEC_FILES = sorted((EXAMPLES / "workloads").glob("*.json"))
SCRIPTS = sorted(EXAMPLES.glob("*.py"))


@pytest.mark.parametrize("path", SPEC_FILES, ids=lambda p: p.name)
def test_workload_specs_valid(path):
    doc = json.loads(path.read_text())
    spec = validate_spec(doc)
    trace = compile_workload(spec, 256 * 1024)
    assert len(trace) == doc["requests"]


def test_spec_files_present():
    assert len(SPEC_FILES) >= 2


@pytest.mark.parametrize("path", SCRIPTS, ids=lambda p: p.name)
def test_example_scripts_parse_and_document(path):
    tree = ast.parse(path.read_text())
    doc = ast.get_docstring(tree)
    assert doc and len(doc) > 80, f"{path.name}: missing real docstring"
    assert "Run:" in doc or "python examples/" in doc, path.name
    # every example is runnable as a script
    has_main_guard = any(
        isinstance(node, ast.If)
        and isinstance(node.test, ast.Compare)
        and getattr(node.test.left, "id", "") == "__name__"
        for node in tree.body
    )
    assert has_main_guard, path.name


def test_example_count():
    assert len(SCRIPTS) >= 10
