"""Trace linting (repro.traces.lint)."""

import numpy as np

from repro.traces.lint import Finding, has_errors, lint_trace
from repro.traces.model import OP_READ, OP_TRIM, OP_WRITE, Trace


def make(times, ops, offsets, sizes):
    return Trace(
        "t",
        np.array(times, float),
        np.array(ops, np.uint8),
        np.array(offsets, np.int64),
        np.array(sizes, np.int64),
    )


def codes(findings):
    return {f.code for f in findings}


class TestHardProblems:
    def test_empty_trace(self):
        t = Trace.from_lists("e", [])
        fs = lint_trace(t)
        assert codes(fs) == {"empty"}
        assert has_errors(fs)

    def test_out_of_range(self):
        t = make([0.0], [OP_WRITE], [1000], [100])
        fs = lint_trace(t, logical_sectors=512)
        assert "out-of-range" in codes(fs)
        assert has_errors(fs)

    def test_in_range_clean(self):
        t = make([0.0, 1.0], [OP_WRITE, OP_READ], [0, 16], [16, 16])
        fs = lint_trace(t, logical_sectors=512)
        assert not has_errors(fs)

    def test_huge_requests(self):
        t = make([0.0], [OP_WRITE], [0], [20_000])
        assert "huge-requests" in codes(lint_trace(t))


class TestTimeAxis:
    def test_time_offset_reported(self):
        t = make([500.0, 501.0], [OP_WRITE, OP_WRITE], [0, 16], [8, 8])
        assert "time-offset" in codes(lint_trace(t))

    def test_coarse_timestamps(self):
        t = make([0.0] * 10, [OP_WRITE] * 10, list(range(0, 160, 16)),
                 [8] * 10)
        assert "timestamp-resolution" in codes(lint_trace(t))

    def test_absurd_rate(self):
        t = make(np.linspace(0, 0.05, 50), [OP_WRITE] * 50,
                 list(range(0, 800, 16)), [8] * 50)
        assert "arrival-rate" in codes(lint_trace(t))


class TestComposition:
    def test_read_only(self):
        t = make([0.0, 1.0], [OP_READ, OP_READ], [0, 16], [8, 8])
        assert "read-only" in codes(lint_trace(t))

    def test_trims_noted(self):
        t = make([0.0, 1.0], [OP_WRITE, OP_TRIM], [0, 0], [16, 16])
        assert "has-trims" in codes(lint_trace(t))

    def test_fully_aligned(self):
        t = make([0.0, 1.0], [OP_WRITE, OP_WRITE], [0, 16], [16, 16])
        assert "fully-aligned" in codes(lint_trace(t))

    def test_across_ratio_always_reported(self):
        t = make([0.0], [OP_WRITE], [8], [16])
        fs = lint_trace(t)
        ratio = next(f for f in fs if f.code == "across-ratio")
        assert "100.0%" in ratio.message

    def test_severity_ordering(self):
        t = make([500.0], [OP_WRITE], [1000], [100])
        fs = lint_trace(t, logical_sectors=512)
        sevs = [f.severity for f in fs]
        assert sevs == sorted(
            sevs, key=lambda s: ("error", "warning", "info").index(s)
        )

    def test_finding_str(self):
        f = Finding("error", "x", "boom")
        assert "ERROR" in str(f) and "boom" in str(f)
