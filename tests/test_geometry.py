"""Physical address packing/unpacking."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import SSDConfig
from repro.errors import GeometryError
from repro.geometry import FlashGeometry, PhysAddr


@pytest.fixture(scope="module")
def geom():
    return FlashGeometry(SSDConfig.tiny())


class TestPacking:
    def test_first_ppn(self, geom):
        assert geom.ppn(0, 0, 0) == 0

    def test_sequential_within_block(self, geom):
        assert geom.ppn(0, 0, 1) == 1

    def test_blocks_contiguous(self, geom):
        assert geom.ppn(0, 1, 0) == geom.cfg.pages_per_block

    def test_planes_contiguous(self, geom):
        assert geom.ppn(1, 0, 0) == geom.pages_per_plane

    def test_out_of_range(self, geom):
        with pytest.raises(GeometryError):
            geom.ppn(geom.num_planes, 0, 0)
        with pytest.raises(GeometryError):
            geom.ppn(0, geom.blocks_per_plane, 0)
        with pytest.raises(GeometryError):
            geom.ppn(0, 0, geom.pages_per_block)


class TestDecode:
    def test_decode_zero(self, geom):
        a = geom.decode(0)
        assert a == PhysAddr(0, 0, 0, 0, 0, 0)

    def test_decode_encode_roundtrip_exhaustive_corners(self, geom):
        for ppn in (0, 1, geom.num_pages - 1, geom.pages_per_plane,
                    geom.pages_per_block):
            assert geom.encode(geom.decode(ppn)) == ppn

    def test_check_ppn_rejects(self, geom):
        with pytest.raises(GeometryError):
            geom.check_ppn(geom.num_pages)
        with pytest.raises(GeometryError):
            geom.check_ppn(-1)

    def test_encode_bad_addr(self, geom):
        with pytest.raises(GeometryError):
            geom.encode(PhysAddr(99, 0, 0, 0, 0, 0))


class TestHierarchy:
    def test_chip_of_plane_grouping(self, geom):
        per_chip = geom.planes_per_chip
        for plane in range(geom.num_planes):
            assert geom.chip_of_plane(plane) == plane // per_chip

    def test_chip_of_ppn_matches_decode(self, geom):
        cfg = geom.cfg
        for ppn in range(0, geom.num_pages, geom.num_pages // 37 + 1):
            a = geom.decode(ppn)
            chip_global = a.channel * cfg.chips_per_channel + a.chip
            assert geom.chip_of_ppn(ppn) == chip_global

    def test_block_of_ppn(self, geom):
        ppb = geom.pages_per_block
        assert geom.block_of_ppn(ppb * 3 + 5) == 3
        assert geom.page_in_block(ppb * 3 + 5) == 5

    def test_plane_of_block(self, geom):
        assert geom.plane_of_block(geom.blocks_per_plane) == 1

    def test_first_ppn_of_block(self, geom):
        assert geom.first_ppn_of_block(2) == 2 * geom.pages_per_block
        with pytest.raises(GeometryError):
            geom.first_ppn_of_block(geom.num_blocks)


@given(ppn=st.integers(min_value=0))
@settings(max_examples=200)
def test_roundtrip_property(ppn):
    geom = FlashGeometry(SSDConfig.tiny())
    ppn = ppn % geom.num_pages
    addr = geom.decode(ppn)
    assert geom.encode(addr) == ppn
    # decoded coordinates are in range
    cfg = geom.cfg
    assert 0 <= addr.channel < cfg.channels
    assert 0 <= addr.chip < cfg.chips_per_channel
    assert 0 <= addr.die < cfg.dies_per_chip
    assert 0 <= addr.plane < cfg.planes_per_die
    assert 0 <= addr.block < cfg.blocks_per_plane
    assert 0 <= addr.page < cfg.pages_per_block
