"""MRSM sub-page regional mapping FTL."""

import pytest

from repro.errors import ConfigError
from repro.flash.service import FlashService
from repro.ftl.mrsm import MRSMFTL
from conftest import build_ftl


@pytest.fixture
def ftl_pair(tiny_cfg):
    return build_ftl("mrsm", tiny_cfg)


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


class TestRegionGeometry:
    def test_region_size(self, ftl_pair):
        _, ftl = ftl_pair
        assert ftl.R == 4
        assert ftl.region_sectors == 4  # 2 KiB regions on 8 KiB pages

    def test_split_regions(self, ftl_pair):
        _, ftl = ftl_pair
        pieces = list(ftl._split_regions(6, 10))
        # sectors 6..16: regions 1 (6..8), 2 (8..12), 3 (12..16)
        assert pieces == [(1, 2, 4), (2, 0, 4), (3, 0, 4)]

    def test_invalid_region_count(self, tiny_cfg):
        svc = FlashService(tiny_cfg)
        with pytest.raises(ConfigError):
            MRSMFTL(svc, regions_per_page=5)


class TestPacking:
    def test_across_page_write_single_program(self, ftl_pair):
        svc, ftl = ftl_pair
        # 12-sector across-page extent = 3 regions -> ONE program
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 1))
        assert svc.counters.data_writes == 1

    def test_full_page_write_single_program(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        assert svc.counters.data_writes == 1

    def test_large_write_multiple_pages(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 32, 0.0, stamps_for(0, 32, 1))  # 8 regions -> 2 pages
        assert svc.counters.data_writes == 2

    def test_region_aligned_update_no_rmw(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        before = svc.counters.data_reads
        ftl.write(4, 8, 0.0, stamps_for(4, 8, 2))  # region-aligned
        assert svc.counters.data_reads == before  # "overwrites directly"
        assert svc.counters.update_reads == 0

    def test_sub_region_update_rmw(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.write(1, 2, 0.0, stamps_for(1, 2, 2))  # partial region 0
        assert svc.counters.update_reads == 1
        _, found = ftl.read(0, 4, 0.0)
        assert found[0] == 1 and found[1] == 2 and found[2] == 2 and found[3] == 1


class TestSlotLiveness:
    def test_page_invalidated_when_all_slots_die(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ppn = ftl.region_map[0][0]
        assert svc.array.is_valid(ppn)
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 2))  # kills all 4 slots
        assert not svc.array.is_valid(ppn)

    def test_page_survives_partial_overwrite(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ppn = ftl.region_map[0][0]
        ftl.write(0, 4, 0.0, stamps_for(0, 4, 2))  # kills one slot
        assert svc.array.is_valid(ppn)  # three slots still live

    def test_region_map_points_to_new_page(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        old = ftl.region_map[0]
        ftl.write(0, 4, 0.0, stamps_for(0, 4, 2))
        assert ftl.region_map[0] != old
        assert ftl.region_map[1][0] == old[0]  # untouched region stays


class TestReads:
    def test_read_spanning_regions(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        before = svc.counters.data_reads
        _, found = ftl.read(2, 10, 0.0)
        assert svc.counters.data_reads - before == 1  # one packed page
        assert len(found) == 10

    def test_read_fragmented_page_multiple_reads(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ftl.write(4, 4, 0.0, stamps_for(4, 4, 2))  # region 1 moves
        before = svc.counters.data_reads
        _, found = ftl.read(0, 16, 0.0)
        assert svc.counters.data_reads - before == 2  # two physical pages
        assert found[0] == 1 and found[4] == 2 and found[8] == 1

    def test_read_unwritten(self, ftl_pair):
        svc, ftl = ftl_pair
        t, found = ftl.read(512, 16, 1.0)
        assert t == 1.0 and found == {}


class TestGCRelocation:
    def test_compaction_of_live_slots(self, ftl_pair):
        svc, ftl = ftl_pair
        ftl.write(0, 16, 0.0, stamps_for(0, 16, 1))
        ppn = ftl.region_map[0][0]
        ftl.write(0, 4, 0.0, stamps_for(0, 4, 2))   # slot 0 dead
        ftl.write(8, 4, 0.0, stamps_for(8, 4, 3))   # slot 2 dead
        ftl._relocate(ppn, 0.0, True)
        assert not svc.array.is_valid(ppn)
        # surviving regions 1 and 3 compacted onto a new page
        new_ppn = ftl.region_map[1][0]
        assert ftl.region_map[3][0] == new_ppn
        _, found = ftl.read(0, 16, 0.0)
        assert found[5] == 1 and found[13] == 1 and found[0] == 2 and found[9] == 3
        ftl.check_invariants()

    def test_sustained_overwrite_under_gc(self, micro_cfg):
        svc, ftl = build_ftl("mrsm", micro_cfg)
        spp = ftl.spp
        hot = max(4, ftl.logical_pages // 8)
        for i in range(3 * svc.geom.num_pages):
            lpn = i % hot
            ftl.write(lpn * spp + (i % 3), min(spp - (i % 3), 6 + (i % 8)), 0.0,
                      None)
        assert svc.counters.erases > 0
        ftl.check_invariants()


class TestAdaptiveTable:
    def test_packed_page_one_entry(self, ftl_pair):
        _, ftl = ftl_pair
        ftl.write(0, 16, 0.0)  # 4 regions packed in order on one page
        assert ftl.mapping_table_bytes() == 8  # one plain page entry

    def test_fragmented_page_per_region_entries(self, ftl_pair):
        _, ftl = ftl_pair
        ftl.write(0, 16, 0.0)
        ftl.write(4, 4, 0.0)  # fragment
        assert ftl.mapping_table_bytes() == 4 * 16  # offset/size entries

    def test_partial_page_counts_regions(self, ftl_pair):
        _, ftl = ftl_pair
        ftl.write(0, 8, 0.0)  # two regions only
        assert ftl.mapping_table_bytes() == 2 * 16

    def test_empty_table(self, ftl_pair):
        _, ftl = ftl_pair
        assert ftl.mapping_table_bytes() == 0


class TestStats:
    def test_stats_keys(self, ftl_pair):
        _, ftl = ftl_pair
        ftl.write(0, 16, 0.0)
        s = ftl.stats()
        assert s["region_entries"] == 4
        assert "map_residency" in s

    def test_tree_touches_grow(self, ftl_pair):
        svc, ftl = ftl_pair
        t0 = ftl._tree_touches()
        for i in range(64):
            ftl.write(i * 16, 16, 0.0)
        assert ftl._tree_touches() >= t0
