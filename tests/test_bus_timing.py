"""Optional channel-bus transfer contention in the timing model."""

import pytest

from repro.config import SSDConfig, TimingConfig
from repro.errors import ConfigError
from repro.flash.timing import ChipTimeline


@pytest.fixture
def tl():
    # 4 chips, 2 per channel, 0.02 ms transfer
    return ChipTimeline(4, TimingConfig(transfer_ms=0.02), chips_per_channel=2)


class TestTransferDisabled:
    def test_zero_transfer_same_as_before(self):
        tl = ChipTimeline(2, TimingConfig(), chips_per_channel=2)
        assert tl.program(0, 0.0) == pytest.approx(2.0)
        assert tl.read(0, 10.0) == pytest.approx(10.075)


class TestProgramTransfer:
    def test_program_includes_transfer(self, tl):
        assert tl.program(0, 0.0) == pytest.approx(2.02)

    def test_same_channel_serialises_transfers(self, tl):
        # chips 0 and 1 share channel 0: second transfer waits
        a = tl.program(0, 0.0)
        b = tl.program(1, 0.0)
        assert a == pytest.approx(2.02)
        assert b == pytest.approx(0.02 + 0.02 + 2.0)  # bus wait + tr + cell

    def test_other_channel_unaffected(self, tl):
        tl.program(0, 0.0)
        c = tl.program(2, 0.0)  # channel 1
        assert c == pytest.approx(2.02)


class TestReadTransfer:
    def test_read_includes_transfer(self, tl):
        assert tl.read(0, 0.0) == pytest.approx(0.095)

    def test_read_transfer_waits_for_bus(self, tl):
        tl.program(0, 0.0)   # bus 0 busy until 0.02
        t = tl.read(1, 0.0)  # cell done at 0.075 > 0.02: no wait
        assert t == pytest.approx(0.095)

    def test_reads_on_shared_channel_serialise_transfer_only(self, tl):
        a = tl.read(0, 0.0)
        b = tl.read(1, 0.0)
        assert a == pytest.approx(0.095)
        # cell reads overlap; second transfer queues behind the first
        assert b == pytest.approx(0.095 + 0.02)


class TestIntegration:
    def test_service_uses_channel_config(self):
        from repro.flash.service import FlashService

        cfg = SSDConfig.tiny().replace(
            timing=TimingConfig(transfer_ms=0.02)
        )
        svc = FlashService(cfg)
        t = svc.program_page(0, None, 0.0)
        assert t == pytest.approx(2.02)

    def test_negative_transfer_rejected(self):
        with pytest.raises(ConfigError):
            TimingConfig(transfer_ms=-1).validate()
