"""Every example script must run end-to-end (scaled down)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=600):
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


@pytest.mark.slow
def test_quickstart():
    out = run_example("quickstart.py", "--requests", "1500")
    assert "scheme comparison" in out
    assert "Across-FTL activity" in out


@pytest.mark.slow
def test_vdi_replay_synthetic():
    out = run_example("vdi_replay.py", "--scale", "0.001", "--luns", "2")
    assert "lun1" in out and "lun2" in out
    assert "I/O-time reduction" in out


@pytest.mark.slow
def test_page_size_study():
    out = run_example("page_size_study.py", "--requests", "1200")
    assert "across-page ratio vs page size" in out
    assert "normalised I/O time" in out


@pytest.mark.slow
def test_endurance_study():
    out = run_example("endurance_study.py", "--requests", "1200")
    assert "erase saving" in out


@pytest.mark.slow
def test_trace_characterization():
    out = run_example("trace_characterization.py", "--count", "4")
    assert "across@8K" in out
    assert "trace1" in out


@pytest.mark.slow
def test_tail_latency():
    out = run_example("tail_latency.py", "--requests", "1500")
    assert "p99" in out and "tail" in out


@pytest.mark.slow
def test_gc_policy_study():
    out = run_example("gc_policy_study.py", "--requests", "2000")
    assert "cost_benefit" in out and "wear gini" in out


@pytest.mark.slow
def test_power_loss_recovery():
    out = run_example("power_loss_recovery.py", "--requests", "1200")
    assert "power loss" in out
    assert "tables and data intact" in out


@pytest.mark.slow
def test_custom_workload():
    out = run_example("custom_workload.py", "--requests", "800")
    assert "mail-server" in out and "build-server" in out
    assert "I/O-time reduction" in out


@pytest.mark.slow
def test_gc_dynamics():
    out = run_example("gc_dynamics.py", "--requests", "3000")
    assert "GC dynamics" in out
    assert "erase pulses" in out
