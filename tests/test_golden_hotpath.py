"""Golden-report equivalence for the bench-gate scenario set.

``tests/data/golden_hotpath.json`` pins the *entire* canonical
:class:`~repro.metrics.report.SimulationReport` of every pinned
benchmark scenario (fig09 replays per scheme, the faults-stress preset
and the scale-0.02 hotpath replay).  Any hot-path optimisation must
keep these reports bit-identical — this is the proof behind the
"≥2x faster, same output" contract of the performance overhaul, and
the same fixture backs the digests in ``BENCH_baseline.json``.

Regenerate (only after an *intentional* behaviour change):

    PYTHONPATH=src python - <<'EOF'
    import json
    from repro.experiments.benchgate import scenarios, canonical_report_dict
    doc = {"format": 1, "reports": {
        sc.name: canonical_report_dict(sc.run()) for sc in scenarios()
    }}
    with open("tests/data/golden_hotpath.json", "w") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    EOF

...then regenerate ``BENCH_baseline.json`` with ``repro bench`` too.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.benchgate import (
    canonical_report_dict,
    report_digest,
    scenarios,
)

FIXTURE = Path(__file__).parent / "data" / "golden_hotpath.json"


@pytest.fixture(scope="module")
def golden() -> dict:
    doc = json.loads(FIXTURE.read_text())
    assert doc["format"] == 1
    return doc["reports"]


def test_fixture_covers_every_scenario(golden):
    assert sorted(golden) == sorted(sc.name for sc in scenarios())


@pytest.mark.parametrize("sc", scenarios(), ids=lambda sc: sc.name)
def test_report_matches_golden(sc, golden):
    report = sc.run()
    got = canonical_report_dict(report)
    want = golden[sc.name]
    if got != want:
        diff = [
            f"{key}: golden={want.get(key)!r} got={got.get(key)!r}"
            for key in sorted(set(want) | set(got))
            if want.get(key) != got.get(key)
        ]
        pytest.fail(
            f"{sc.name}: simulation output drifted from the golden "
            f"fixture in {len(diff)} key(s):\n  " + "\n  ".join(diff[:20])
        )
    # the digest is what BENCH_baseline.json pins; tie the two together
    blob = json.dumps(want, sort_keys=True).encode()
    import hashlib

    assert report_digest(report) == hashlib.sha256(blob).hexdigest()


@pytest.mark.parametrize("sc", scenarios(), ids=lambda sc: sc.name)
def test_batch_report_matches_golden(sc, golden):
    """The batch execution layer (``SimConfig.batch``) must reproduce
    the same golden reports bit for bit — same fixture, different
    execution strategy."""
    got = canonical_report_dict(sc.run(batch=True))
    want = golden[sc.name]
    if got != want:
        diff = [
            f"{key}: golden={want.get(key)!r} got={got.get(key)!r}"
            for key in sorted(set(want) | set(got))
            if want.get(key) != got.get(key)
        ]
        pytest.fail(
            f"{sc.name} (batch): output drifted from the golden fixture "
            f"in {len(diff)} key(s):\n  " + "\n  ".join(diff[:20])
        )
