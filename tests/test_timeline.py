"""Per-request event log (repro.metrics.timeline) and its engine hookup."""

import numpy as np
import pytest

from repro.config import SimConfig, SSDConfig
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.metrics.timeline import RequestLog
from repro.sim.engine import Simulator
from repro.traces.model import OP_READ, OP_WRITE


class TestRequestLog:
    def test_append_and_views(self):
        log = RequestLog(capacity=2)
        for i in range(10):  # force growth
            log.append(float(i), OP_WRITE, i % 2 == 0, 1.0 + i, i)
        assert len(log) == 10
        assert list(log.time) == [float(i) for i in range(10)]
        assert log.flush[3] == 3

    def test_percentile_filters(self):
        log = RequestLog()
        for i in range(100):
            log.append(float(i), OP_WRITE if i % 2 else OP_READ,
                       i % 4 == 0, float(i), 1)
        p_all = log.percentile(50)
        p_writes = log.percentile(50, op=OP_WRITE)
        assert p_all == pytest.approx(49.5)
        assert p_writes == pytest.approx(50.0)
        assert log.percentile(50, across=True) < p_all

    def test_percentile_empty_selection(self):
        log = RequestLog()
        log.append(0.0, OP_READ, False, 1.0, 0)
        assert log.percentile(99, op=OP_WRITE) == 0.0

    def test_latency_series(self):
        log = RequestLog()
        for i in range(20):
            log.append(i * 10.0, OP_WRITE, False, float(i), 1)
        starts, means = log.latency_series(bucket_ms=50.0)
        assert len(starts) == len(means) == 4
        assert means[0] == pytest.approx(np.mean([0, 1, 2, 3, 4]))

    def test_latency_series_empty(self):
        starts, means = RequestLog().latency_series(10.0)
        assert len(starts) == 0

    def test_tail_ratio(self):
        log = RequestLog()
        for i in range(99):
            log.append(float(i), OP_WRITE, False, 1.0, 1)
        log.append(99.0, OP_WRITE, False, 100.0, 1)
        assert log.tail_ratio(99) > 1.0


class TestEngineHookup:
    def test_log_disabled_by_default(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("ftl", svc))
        assert sim.request_log is None

    def test_log_records_requests(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("across", svc), SimConfig(record_requests=True))
        sim.process(OP_WRITE, 8, 16, 0.0)   # across
        sim.process(OP_WRITE, 0, 16, 5.0)   # normal, overwrites part
        sim.process(OP_READ, 0, 8, 9.0)
        log = sim.request_log
        assert len(log) == 3
        assert bool(log.across[0]) is True
        assert bool(log.across[1]) is False
        assert log.op[2] == OP_READ
        assert (log.flush[:2] >= 1).all()
        assert log.flush[2] == 0


class TestRequestLogGrowth:
    def test_growth_past_default_capacity(self):
        """The default 4096-row buffers must double transparently."""
        log = RequestLog()
        n = 4096 + 123
        for i in range(n):
            log.append(float(i), OP_WRITE, False, 0.5, 1)
        assert len(log) == n
        assert log.time[4096] == 4096.0
        assert log.flush[n - 1] == 1
        # views stay trimmed to the logical length, not the capacity
        assert len(log.latency) == n


class TestNonMonotonicTimestamps:
    """Regression: bucketing against t[0] fed negative indices to
    np.bincount when a log's first row was not its earliest (real
    blktrace/SYSTOR captures are not sorted)."""

    def out_of_order_log(self):
        log = RequestLog()
        # first row arrives *later* than the rest of the burst
        for i, t in enumerate([50.0, 3.0, 1.0, 20.0, 7.0]):
            log.append(t, OP_WRITE, False, float(i + 1), 1)
        return log

    def test_latency_series_buckets_from_earliest(self):
        log = self.out_of_order_log()
        starts, means = log.latency_series(10.0)
        assert starts[0] == 1.0  # t.min(), not time[0] == 50
        assert (np.diff(starts) > 0).all()
        # rows at t=1,3,7 share the first bucket: latencies 3,2,5
        assert means[0] == pytest.approx(10.0 / 3.0)
        # the late first row lands in the last bucket alone
        assert starts[-1] == pytest.approx(41.0)
        assert means[-1] == pytest.approx(1.0)

    def test_percentile_unaffected_by_order(self):
        log = self.out_of_order_log()
        assert log.percentile(50.0) == pytest.approx(3.0)

    def test_series_covers_all_rows(self):
        rng = np.random.default_rng(4)
        log = RequestLog()
        times = rng.uniform(0.0, 500.0, size=200)
        for t in times:
            log.append(float(t), OP_READ, False, 1.0, 0)
        starts, means = log.latency_series(25.0)
        n_rows = sum(
            1
            for s in starts
            for t in times
            if s <= t < s + 25.0
        )
        assert n_rows == 200
        assert (means == 1.0).all()
