"""Per-request event log (repro.metrics.timeline) and its engine hookup."""

import numpy as np
import pytest

from repro.config import SimConfig, SSDConfig
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.metrics.timeline import RequestLog
from repro.sim.engine import Simulator
from repro.traces.model import OP_READ, OP_WRITE


class TestRequestLog:
    def test_append_and_views(self):
        log = RequestLog(capacity=2)
        for i in range(10):  # force growth
            log.append(float(i), OP_WRITE, i % 2 == 0, 1.0 + i, i)
        assert len(log) == 10
        assert list(log.time) == [float(i) for i in range(10)]
        assert log.flush[3] == 3

    def test_percentile_filters(self):
        log = RequestLog()
        for i in range(100):
            log.append(float(i), OP_WRITE if i % 2 else OP_READ,
                       i % 4 == 0, float(i), 1)
        p_all = log.percentile(50)
        p_writes = log.percentile(50, op=OP_WRITE)
        assert p_all == pytest.approx(49.5)
        assert p_writes == pytest.approx(50.0)
        assert log.percentile(50, across=True) < p_all

    def test_percentile_empty_selection(self):
        log = RequestLog()
        log.append(0.0, OP_READ, False, 1.0, 0)
        assert log.percentile(99, op=OP_WRITE) == 0.0

    def test_latency_series(self):
        log = RequestLog()
        for i in range(20):
            log.append(i * 10.0, OP_WRITE, False, float(i), 1)
        starts, means = log.latency_series(bucket_ms=50.0)
        assert len(starts) == len(means) == 4
        assert means[0] == pytest.approx(np.mean([0, 1, 2, 3, 4]))

    def test_latency_series_empty(self):
        starts, means = RequestLog().latency_series(10.0)
        assert len(starts) == 0

    def test_tail_ratio(self):
        log = RequestLog()
        for i in range(99):
            log.append(float(i), OP_WRITE, False, 1.0, 1)
        log.append(99.0, OP_WRITE, False, 100.0, 1)
        assert log.tail_ratio(99) > 1.0


class TestEngineHookup:
    def test_log_disabled_by_default(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("ftl", svc))
        assert sim.request_log is None

    def test_log_records_requests(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("across", svc), SimConfig(record_requests=True))
        sim.process(OP_WRITE, 8, 16, 0.0)   # across
        sim.process(OP_WRITE, 0, 16, 5.0)   # normal, overwrites part
        sim.process(OP_READ, 0, 8, 9.0)
        log = sim.request_log
        assert len(log) == 3
        assert bool(log.across[0]) is True
        assert bool(log.across[1]) is False
        assert log.op[2] == OP_READ
        assert (log.flush[:2] >= 1).all()
        assert log.flush[2] == 0


class TestRequestLogGrowth:
    def test_growth_past_default_capacity(self):
        """The default 4096-row buffers must double transparently."""
        log = RequestLog()
        n = 4096 + 123
        for i in range(n):
            log.append(float(i), OP_WRITE, False, 0.5, 1)
        assert len(log) == n
        assert log.time[4096] == 4096.0
        assert log.flush[n - 1] == 1
        # views stay trimmed to the logical length, not the capacity
        assert len(log.latency) == n
