"""Fault injection and reliability (repro.faults): model, determinism,
bad-block retirement with data intact, and report round-trips."""

import pytest

from repro.config import FaultConfig, SCHEMES, SimConfig, SSDConfig
from repro.core.across import AcrossFTL
from repro.errors import ConfigError, MediaError
from repro.experiments.parallel import ResultStore, RunSpec, execute_runs
from repro.experiments.runner import run_trace
from repro.faults import FaultInjector, raw_bit_error_rate, read_retry_steps
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.metrics.report import SimulationReport
from repro.sim.engine import Simulator
from repro.traces.synthetic import SyntheticSpec, generate_trace


def _comparable(report: SimulationReport) -> dict:
    """to_dict minus wall_seconds (the only run-to-run nondeterminism)."""
    d = report.to_dict()
    d.pop("wall_seconds")
    return d


@pytest.fixture(scope="module")
def fault_setup():
    cfg = SSDConfig.tiny()
    spec = SyntheticSpec(
        "faulty",
        1_200,
        0.65,
        0.25,
        9.0,
        footprint_sectors=cfg.logical_sectors // 2,
        seed=5,
    )
    trace = generate_trace(spec)
    sim_cfg = SimConfig(
        aged_used=0.8, aged_valid=0.35, faults=FaultConfig.stress()
    )
    return cfg, trace, sim_cfg


# ----------------------------------------------------------------------
# the model
# ----------------------------------------------------------------------
class TestModel:
    def test_rber_grows_with_wear_and_age(self):
        fc = FaultConfig()
        base = raw_bit_error_rate(fc, 0)
        assert base == fc.rber_base
        assert raw_bit_error_rate(fc, 1000) > raw_bit_error_rate(fc, 100)
        assert raw_bit_error_rate(fc, 0, age_ms=1e6) > base
        # negative age is clamped, not amplified
        assert raw_bit_error_rate(fc, 0, age_ms=-5.0) == base

    def test_retry_steps_boundaries(self):
        fc = FaultConfig(ecc_bits=64, retry_error_factor=0.5,
                         max_read_retries=5)
        assert read_retry_steps(fc, 0) == (0, False)
        assert read_retry_steps(fc, 64) == (0, False)
        assert read_retry_steps(fc, 65) == (1, False)
        steps, unc = read_retry_steps(fc, 10**9)
        assert steps == 5 and unc

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            FaultConfig(rber_base=-1.0).validate()
        with pytest.raises(ConfigError):
            FaultConfig(program_fail_prob=1.5).validate()
        with pytest.raises(ConfigError):
            FaultConfig(retire_after_program_fails=0).validate()

    def test_scaled_intensity(self):
        base = FaultConfig.stress()
        off = base.scaled(0)
        assert not off.enabled
        hot = base.scaled(3.0)
        assert hot.enabled
        assert hot.rber_base == pytest.approx(base.rber_base * 3)
        assert hot.erase_fail_prob <= 1.0
        with pytest.raises(ConfigError):
            base.scaled(-1)

    def test_injector_determinism(self, tiny_cfg):
        fc = FaultConfig.stress()
        seq = []
        for _ in range(2):
            array = FlashService(tiny_cfg).array
            inj = FaultInjector(tiny_cfg, fc, array)
            seq.append([
                inj.read_outcome(p, 1.0 + p) for p in range(40)
            ] + [inj.program_attempts(p) for p in range(40)]
              + [inj.erase_fails(b) for b in range(10)])
        assert seq[0] == seq[1]


# ----------------------------------------------------------------------
# injection through the service
# ----------------------------------------------------------------------
class TestServiceInjection:
    def _service(self, cfg, fcfg):
        svc = FlashService(cfg)
        svc.faults = FaultInjector(cfg, fcfg, svc.array)
        return svc

    def test_read_retry_costs_chip_time(self, tiny_cfg):
        # rber so high every read walks retry steps
        fcfg = FaultConfig(enabled=True, rber_base=5e-3, ecc_bits=8)
        svc = self._service(tiny_cfg, fcfg)
        svc.program_page(0, {"lpn": 0}, 0.0, timed=False)
        finish = svc.read_page(0, 0.0)
        assert finish > tiny_cfg.timing.read_ms
        assert svc.counters.read_retries > 0

    def test_uncorrectable_counted_not_raised_by_default(self, tiny_cfg):
        fcfg = FaultConfig(
            enabled=True, rber_base=0.5, ecc_bits=4, max_read_retries=1
        )
        svc = self._service(tiny_cfg, fcfg)
        svc.program_page(0, {"lpn": 0}, 0.0, timed=False)
        svc.read_page(0, 0.0)
        assert svc.counters.uncorrectable_reads == 1

    def test_halt_on_uncorrectable_raises(self, tiny_cfg):
        fcfg = FaultConfig(
            enabled=True, rber_base=0.5, ecc_bits=4, max_read_retries=1,
            halt_on_uncorrectable=True,
        )
        svc = self._service(tiny_cfg, fcfg)
        svc.program_page(0, {"lpn": 0}, 0.0, timed=False)
        with pytest.raises(MediaError):
            svc.read_page(0, 0.0)

    def test_program_failures_queue_retirement(self, tiny_cfg):
        fcfg = FaultConfig(
            enabled=True, program_fail_prob=1.0,
            max_program_retries=2, retire_after_program_fails=3,
        )
        svc = self._service(tiny_cfg, fcfg)
        finish = svc.program_page(0, {"lpn": 0}, 0.0)
        # every attempt failed: base program + 2 reprogram pulses
        assert finish == pytest.approx(3 * tiny_cfg.timing.program_ms)
        assert svc.counters.program_fails == 3
        assert 0 in svc.retire_pending

    def test_erase_failure_retires_block(self, tiny_cfg):
        fcfg = FaultConfig(enabled=True, erase_fail_prob=1.0)
        svc = self._service(tiny_cfg, fcfg)
        ppb = tiny_cfg.pages_per_block
        for p in range(ppb):
            svc.program_page(p, {"lpn": p}, 0.0, timed=False)
            svc.invalidate(p)
        free_before = svc.array.total_free_blocks()
        svc.erase_block(0, 0.0)
        assert svc.array.is_bad[0]
        assert svc.counters.erase_fails == 1
        assert svc.counters.bad_blocks == 1
        assert svc.counters.erases == 0  # the erase never completed
        # the block is gone for good: OP shrank by one block
        assert svc.array.total_free_blocks() == free_before - 1
        svc.array.check_invariants()

    def test_untimed_ops_never_draw(self, tiny_cfg):
        fcfg = FaultConfig(enabled=True, rber_base=0.5, erase_fail_prob=1.0)
        svc = self._service(tiny_cfg, fcfg)
        ppb = tiny_cfg.pages_per_block
        for p in range(ppb):
            svc.program_page(p, {"lpn": p}, 0.0, timed=False)
        svc.read_page(0, 0.0, timed=False)
        for p in range(ppb):
            svc.invalidate(p)
        svc.erase_block(0, 0.0, aging=True)
        assert svc.faults.draws == 0
        assert svc.counters.read_retries == 0
        assert svc.counters.erase_fails == 0


# ----------------------------------------------------------------------
# bad-block retirement through GC, data intact
# ----------------------------------------------------------------------
class TestRetirementDrain:
    def test_across_area_relocated_intact(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = AcrossFTL(svc, track_payload=True)
        spp = ftl.spp
        stamps = {s: 909 for s in range(2056, 2068)}
        ftl.write(2056, 12, 0.0, stamps)
        entry = next(ftl.amt.entries())
        area_ppn = entry.appn
        block = area_ppn // micro_cfg.pages_per_block
        # seal the block so the drain may retire it
        geom = svc.geom
        plane = geom.plane_of_block(block)
        guard = 0
        while (
            svc.array.write_ptr[block] < micro_cfg.pages_per_block
            or block in ftl.allocator.active_in_plane(plane)
        ):
            lpn = 40 + guard
            ftl.write(lpn * spp, spp, 0.0,
                      {s: guard for s in range(lpn * spp, lpn * spp + spp)})
            guard += 1
            assert guard < 10_000
        # mark it failing, as crossing the program-fail threshold would
        svc.retire_pending.add(block)
        ftl.gc.maybe_collect(plane, 1.0)
        assert svc.array.is_bad[block]
        assert svc.counters.bad_blocks == 1
        assert svc.counters.fault_relocations > 0
        # the across area moved and kept every sector
        assert entry.appn != area_ppn
        _, found = ftl.read(2056, 12, 1.0)
        assert all(found[s] == 909 for s in range(2056, 2068))
        ftl.check_invariants()
        svc.array.check_invariants()

    def test_active_block_deferred(self, micro_cfg):
        svc = FlashService(micro_cfg)
        ftl = make_ftl("ftl", svc)
        spp = ftl.spp
        ftl.write(0, spp, 0.0)
        block = int(ftl.pmt[0]) // micro_cfg.pages_per_block
        assert svc.array.write_ptr[block] < micro_cfg.pages_per_block
        svc.retire_pending.add(block)
        plane = svc.geom.plane_of_block(block)
        ftl.gc.maybe_collect(plane, 0.0)
        # unfull frontier block: retirement waits until it seals
        assert not svc.array.is_bad[block]
        assert block in svc.retire_pending


# ----------------------------------------------------------------------
# whole-run behaviour
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_disabled_is_default_identical(self, fault_setup):
        cfg, trace, _ = fault_setup
        a = run_trace("across", trace, cfg, SimConfig())
        b = run_trace("across", trace, cfg,
                      SimConfig(faults=FaultConfig(enabled=False)))
        assert _comparable(a) == _comparable(b)
        assert a.counters.read_retries == 0
        assert a.counters.bad_blocks == 0

    def test_enabled_run_is_deterministic_and_nonzero(self, fault_setup):
        cfg, trace, sim_cfg = fault_setup
        a = run_trace("across", trace, cfg, sim_cfg)
        b = run_trace("across", trace, cfg, sim_cfg)
        assert _comparable(a) == _comparable(b)
        assert a.counters.read_retries > 0
        assert a.extra["fault_draws"] > 0

    def test_jobs_fanout_bit_identical(self, fault_setup):
        cfg, trace, sim_cfg = fault_setup
        specs = [RunSpec.make(s, trace, cfg, sim_cfg) for s in SCHEMES]
        serial = execute_runs(specs, jobs=1)
        fanned = execute_runs(specs, jobs=4)
        for r1, r4 in zip(serial.reports, fanned.reports):
            assert _comparable(r1) == _comparable(r4)

    def test_store_roundtrip_keeps_fault_counters(self, fault_setup, tmp_path):
        cfg, trace, sim_cfg = fault_setup
        store = ResultStore(tmp_path)
        spec = RunSpec.make("across", trace, cfg, sim_cfg)
        first = execute_runs([spec], store=store).reports[0]
        assert first.counters.read_retries > 0
        cached = execute_runs([spec], store=store).reports[0]
        assert _comparable(first) == _comparable(cached)
        # and the faults block differentiates store entries
        other = RunSpec.make(
            "across", trace, cfg, SimConfig(aged_used=0.8, aged_valid=0.35)
        )
        fresh = execute_runs([other], store=store).reports[0]
        assert fresh.counters.read_retries == 0

    def test_report_json_roundtrip(self, fault_setup):
        cfg, trace, sim_cfg = fault_setup
        rep = run_trace("across", trace, cfg, sim_cfg)
        back = SimulationReport.from_json(rep.to_json())
        assert back.counters.read_retries == rep.counters.read_retries
        assert back.counters.bad_blocks == rep.counters.bad_blocks
        assert back.counters.fault_relocations == rep.counters.fault_relocations
        assert _comparable(back) == _comparable(rep)

    def test_oracle_verifies_under_heavy_faults(self, fault_setup):
        cfg, trace, sim_cfg = fault_setup
        from dataclasses import replace

        fc = replace(
            FaultConfig.stress(), erase_fail_prob=0.3, program_fail_prob=2e-2
        )
        checked = replace(sim_cfg, check_oracle=True, faults=fc)
        rep = run_trace("across", trace, cfg, checked)
        assert rep.extra["oracle_reads_verified"] > 0
        assert rep.counters.bad_blocks > 0

    def test_hybrid_schemes_rejected(self, tiny_cfg):
        svc = FlashService(tiny_cfg)
        ftl = make_ftl("bast", svc)
        with pytest.raises(ConfigError):
            Simulator(ftl, SimConfig(faults=FaultConfig.stress()))

    def test_metric_names_resolve(self, fault_setup):
        cfg, trace, sim_cfg = fault_setup
        rep = run_trace("ftl", trace, cfg, sim_cfg)
        for name in (
            "read_retries", "uncorrectable_reads", "program_fails",
            "erase_fails", "bad_blocks", "fault_relocations",
        ):
            assert rep.metric(name) >= 0.0
