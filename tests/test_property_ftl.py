"""Property-based end-to-end correctness: every FTL scheme must return
the newest version of every sector under arbitrary workloads, including
across-page writes, merges, rollbacks and GC pressure.

This is the central correctness argument of the reproduction (DESIGN.md
§6): the sector-version oracle travels through page metadata, and any
stale/missing/foreign data surfaces as a failure here.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SSDConfig
from repro.flash.service import FlashService
from repro.ftl import make_ftl

CFG = SSDConfig(
    channels=2,
    chips_per_channel=1,
    dies_per_chip=1,
    planes_per_die=2,
    blocks_per_plane=12,
    pages_per_block=8,
    page_size_bytes=8 * 1024,
    write_buffer_bytes=0,
)
SPP = CFG.sectors_per_page
MAX_SECTOR = CFG.logical_pages * SPP


def extent_strategy():
    """Random extents biased toward across-page and boundary cases."""
    boundary_across = st.builds(
        lambda b, l, r: (b * SPP - l, min(l + r, SPP)),
        st.integers(1, MAX_SECTOR // SPP - 1),
        st.integers(1, SPP - 1),
        st.integers(1, SPP - 1),
    )
    sub_page = st.builds(
        lambda p, rel, sz: (p * SPP + rel, min(sz, SPP - rel)),
        st.integers(0, MAX_SECTOR // SPP - 1),
        st.integers(0, SPP - 1),
        st.integers(1, SPP),
    )
    multi_page = st.builds(
        lambda p, sz: (p * SPP, sz),
        st.integers(0, MAX_SECTOR // SPP - 4),
        st.integers(1, 3 * SPP),
    )
    return st.one_of(boundary_across, sub_page, multi_page)


ops_strategy = st.lists(
    st.tuples(st.booleans(), extent_strategy()),
    min_size=1,
    max_size=120,
)


def run_workload(scheme: str, ops):
    svc = FlashService(CFG)
    ftl = make_ftl(scheme, svc, track_payload=True)
    versions: dict[int, int] = {}
    v = 0
    for is_write, (offset, size) in ops:
        offset = max(0, min(offset, MAX_SECTOR - 1))
        size = max(1, min(size, MAX_SECTOR - offset))
        if is_write:
            v += 1
            stamps = {}
            for s in range(offset, offset + size):
                stamps[s] = v
                versions[s] = v
            ftl.write(offset, size, 0.0, stamps)
        else:
            _, found = ftl.read(offset, size, 0.0)
            for s in range(offset, offset + size):
                expect = versions.get(s)
                assert found.get(s) == expect, (
                    f"{scheme}: sector {s} expected {expect}, "
                    f"got {found.get(s)}"
                )
    # final full verification of everything ever written
    for s, expect in versions.items():
        _, found = ftl.read(s, 1, 0.0)
        assert found.get(s) == expect, f"{scheme}: final check sector {s}"
    ftl.check_invariants()
    svc.array.check_invariants()
    return svc, ftl


@given(ops=ops_strategy)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_pagemap_returns_newest_data(ops):
    run_workload("ftl", ops)


@given(ops=ops_strategy)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_across_returns_newest_data(ops):
    run_workload("across", ops)


@given(ops=ops_strategy)
@settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_mrsm_returns_newest_data(ops):
    run_workload("mrsm", ops)


@given(
    ops=st.lists(
        st.tuples(st.just(True), extent_strategy()), min_size=40, max_size=90
    ),
    seed=st.integers(0, 2**16),
)
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_across_invariants_under_gc_pressure(ops, seed):
    """Hot overwrites force GC while areas exist; the AMT, PMT and flash
    state must stay mutually consistent throughout."""
    rng = np.random.default_rng(seed)
    svc = FlashService(CFG)
    ftl = make_ftl("across", svc, track_payload=True)
    hot = max(2, CFG.logical_pages // 6)
    v = 0
    for _, (offset, size) in ops:
        offset = max(0, min(offset, MAX_SECTOR - 1))
        size = max(1, min(size, MAX_SECTOR - offset))
        v += 1
        ftl.write(offset, size, 0.0, {s: v for s in range(offset, offset + size)})
        # interleave hot full-page overwrites to force GC
        lpn = int(rng.integers(hot))
        v += 1
        ftl.write(
            lpn * SPP, SPP, 0.0, {s: v for s in range(lpn * SPP, (lpn + 1) * SPP)}
        )
    ftl.check_invariants()
    svc.array.check_invariants()


mixed_ops_strategy = st.lists(
    st.tuples(st.sampled_from(["write", "read", "trim"]), extent_strategy()),
    min_size=1,
    max_size=100,
)


def run_mixed_workload(scheme: str, ops):
    """Like run_workload but with TRIM mixed in."""
    svc = FlashService(CFG)
    ftl = make_ftl(scheme, svc, track_payload=True)
    versions: dict[int, int] = {}
    v = 0
    for action, (offset, size) in ops:
        offset = max(0, min(offset, MAX_SECTOR - 1))
        size = max(1, min(size, MAX_SECTOR - offset))
        if action == "write":
            v += 1
            stamps = {}
            for s in range(offset, offset + size):
                stamps[s] = v
                versions[s] = v
            ftl.write(offset, size, 0.0, stamps)
        elif action == "trim":
            ftl.trim(offset, size, 0.0)
            for s in range(offset, offset + size):
                versions.pop(s, None)
        else:
            _, found = ftl.read(offset, size, 0.0)
            for s in range(offset, offset + size):
                assert found.get(s) == versions.get(s), (
                    f"{scheme}: sector {s}"
                )
    for s, expect in versions.items():
        _, found = ftl.read(s, 1, 0.0)
        assert found.get(s) == expect, f"{scheme}: final sector {s}"
    ftl.check_invariants()
    svc.array.check_invariants()


@given(ops=mixed_ops_strategy)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_pagemap_with_trim(ops):
    run_mixed_workload("ftl", ops)


@given(ops=mixed_ops_strategy)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_across_with_trim(ops):
    run_mixed_workload("across", ops)


@given(ops=mixed_ops_strategy)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)
def test_mrsm_with_trim(ops):
    run_mixed_workload("mrsm", ops)


def test_across_equivalence_with_pagemap():
    """Both schemes, fed the same workload, must expose identical data
    (they differ only in physical placement)."""
    rng = np.random.default_rng(7)
    ops = []
    for _ in range(300):
        is_write = rng.random() < 0.7
        kind = rng.integers(3)
        if kind == 0:
            b = int(rng.integers(1, MAX_SECTOR // SPP))
            l = int(rng.integers(1, SPP // 2))
            r = int(rng.integers(1, SPP // 2))
            ext = (b * SPP - l, l + r)
        elif kind == 1:
            p = int(rng.integers(MAX_SECTOR // SPP))
            sz = int(rng.integers(1, SPP))
            ext = (p * SPP + int(rng.integers(0, SPP - sz + 1)), sz)
        else:
            p = int(rng.integers(MAX_SECTOR // SPP - 3))
            ext = (p * SPP, int(rng.integers(1, 2 * SPP)))
        ops.append((is_write, ext))
    _, ftl_a = run_workload("ftl", ops)
    _, ftl_b = run_workload("across", ops)
    # both agreed with the same ground-truth version map inside
    # run_workload; additionally their views of random sectors match
    for s in rng.integers(0, MAX_SECTOR, 200).tolist():
        _, fa = ftl_a.read(s, 1, 0.0)
        _, fb = ftl_b.read(s, 1, 0.0)
        assert fa.get(s) == fb.get(s), s
