"""FlashService facade: counters, kinds, timed/untimed ops."""

import pytest

from repro.config import SSDConfig
from repro.flash.service import FlashService
from repro.metrics.counters import OpKind


@pytest.fixture
def svc():
    return FlashService(SSDConfig.tiny())


class TestCounting:
    def test_data_write_counted(self, svc):
        svc.program_page(0, "m", 0.0, OpKind.DATA)
        assert svc.counters.data_writes == 1
        assert svc.counters.total_writes == 1

    def test_map_write_counted_separately(self, svc):
        svc.program_page(0, "m", 0.0, OpKind.MAP)
        assert svc.counters.map_writes == 1
        assert svc.counters.data_writes == 0

    def test_read_counted(self, svc):
        svc.program_page(0, "m", 0.0, OpKind.DATA)
        svc.read_page(0, 0.0, OpKind.DATA)
        assert svc.counters.data_reads == 1

    def test_gc_ops_separate(self, svc):
        svc.program_page(0, "m", 0.0, OpKind.GC)
        svc.read_page(0, 0.0, OpKind.GC)
        assert svc.counters.gc_writes == 1
        assert svc.counters.gc_reads == 1
        # GC ops still count into the measured totals
        assert svc.counters.total_writes == 1
        assert svc.counters.total_reads == 1

    def test_aging_excluded_from_totals(self, svc):
        svc.program_page(0, "m", 0.0, OpKind.AGING)
        assert svc.counters.total_writes == 0

    def test_erase_counting(self, svc):
        svc.program_page(0, "m", 0.0, OpKind.DATA)
        svc.invalidate(0)
        svc.erase_block(0, 0.0)
        assert svc.counters.erases == 1

    def test_aging_erase_separate(self, svc):
        svc.program_page(0, "m", 0.0, OpKind.AGING)
        svc.invalidate(0)
        svc.erase_block(0, 0.0, aging=True)
        assert svc.counters.erases == 0
        assert svc.counters.aging_erases == 1


class TestTiming:
    def test_timed_program_advances_chip(self, svc):
        t = svc.program_page(0, "m", 1.0, OpKind.DATA)
        assert t == pytest.approx(3.0)

    def test_untimed_ops_do_not_occupy(self, svc):
        t = svc.program_page(0, "m", 1.0, OpKind.AGING, timed=False)
        assert t == 1.0
        assert (svc.timeline.busy_until == 0).all()

    def test_erase_occupies_chip(self, svc):
        svc.program_page(0, "m", 0.0, OpKind.DATA)
        svc.invalidate(0)
        t = svc.erase_block(0, 10.0)
        assert t == pytest.approx(13.5)

    def test_read_untimed(self, svc):
        svc.program_page(0, "m", 0.0, OpKind.DATA, timed=False)
        assert svc.read_page(0, 5.0, OpKind.DATA, timed=False) == 5.0


def test_free_fraction_passthrough(svc):
    assert svc.free_fraction(0) == 1.0
    svc.pop_free_block(0)
    assert svc.free_fraction(0) < 1.0


def test_num_planes(svc):
    assert svc.num_planes == SSDConfig.tiny().num_planes
