"""Counters, latency recording, report normalisation, table rendering."""

import pytest

from repro.metrics.counters import FlashOpCounters, OpKind
from repro.metrics.latency import LatencyRecorder, LatencySummary
from repro.metrics.report import geomean, normalize, render_table


class TestCounters:
    def test_shares(self):
        c = FlashOpCounters()
        c.count_write(OpKind.DATA, 70)
        c.count_write(OpKind.MAP, 30)
        assert c.map_write_share() == pytest.approx(0.3)

    def test_empty_shares(self):
        assert FlashOpCounters().map_write_share() == 0.0
        assert FlashOpCounters().map_read_share() == 0.0

    def test_aging_not_in_totals(self):
        c = FlashOpCounters()
        c.count_write(OpKind.AGING, 100)
        c.count_read(OpKind.AGING, 100)
        assert c.total_writes == 0 and c.total_reads == 0

    def test_snapshot_keys(self):
        snap = FlashOpCounters().snapshot()
        for key in ("data_reads", "map_writes", "erases", "dram_accesses"):
            assert key in snap

    def test_merge(self):
        a, b = FlashOpCounters(), FlashOpCounters()
        a.count_write(OpKind.DATA, 5)
        b.count_write(OpKind.DATA, 7)
        b.count_erase()
        m = a.merged_with(b)
        assert m.data_writes == 12 and m.erases == 1


class TestLatencyRecorder:
    def test_classification(self):
        r = LatencyRecorder()
        r.record(True, True, 2.0, 10)
        r.record(True, False, 1.0, 16)
        r.record(False, True, 0.5, 8)
        assert r.summary(r.WRITE_ACROSS).count == 1
        assert r.summary(r.WRITE_NORMAL).count == 1
        assert r.summary(r.READ_ACROSS).count == 1
        assert r.summary(r.READ_NORMAL).count == 0

    def test_totals_without_sampling(self):
        r = LatencyRecorder(enabled=False)
        r.record(True, False, 2.0, 16)
        r.record(False, False, 1.0, 16)
        assert r.total_ms == pytest.approx(3.0)
        assert r.mean_write_ms == pytest.approx(2.0)
        assert r.mean_read_ms == pytest.approx(1.0)
        assert r.summary(r.WRITE_NORMAL).count == 0  # sampling off

    def test_per_sector_metric(self):
        r = LatencyRecorder()
        r.record(True, True, 2.0, 10)
        r.record(True, True, 4.0, 10)
        s = r.summary(r.WRITE_ACROSS)
        assert s.per_sector_ms == pytest.approx(6.0 / 20)

    def test_percentiles(self):
        r = LatencyRecorder()
        for i in range(100):
            r.record(False, False, float(i), 1)
        s = r.summary(r.READ_NORMAL)
        assert s.p50_ms == pytest.approx(49.5)
        assert s.max_ms == 99.0

    def test_empty_summary(self):
        assert LatencySummary.empty().count == 0

    def test_growth_beyond_initial_capacity(self):
        r = LatencyRecorder()
        for i in range(5000):
            r.record(True, False, 1.0, 4)
        assert r.summary(r.WRITE_NORMAL).count == 5000


class TestReportExport:
    def _report(self):
        from repro.metrics.report import SimulationReport
        from repro.metrics.counters import FlashOpCounters

        rec = LatencyRecorder()
        rec.record(True, False, 2.0, 16)
        return SimulationReport(
            scheme="across",
            trace_name="t",
            requests=1,
            counters=FlashOpCounters(),
            latency=rec,
            extra={"across_rollbacks": 3, "unjsonable": object()},
            mapping_table_bytes=128,
        )

    def test_to_dict_roundtrips_json(self):
        import json

        rep = self._report()
        d = json.loads(rep.to_json())
        assert d["scheme"] == "across"
        assert d["latency"]["mean_write_ms"] == 2.0
        assert d["extra"]["across_rollbacks"] == 3
        assert "unjsonable" not in d["extra"]

    def test_metric_lookup(self):
        rep = self._report()
        assert rep.metric("mapping_table_bytes") == 128.0
        assert rep.metric("across_rollbacks") == 3.0


class TestNormalize:
    def test_basic(self):
        n = normalize({"ftl": 10.0, "across": 8.0})
        assert n["ftl"] == 1.0 and n["across"] == pytest.approx(0.8)

    def test_zero_baseline(self):
        n = normalize({"ftl": 0.0, "across": 2.0})
        assert n["ftl"] == 0.0 and n["across"] == float("inf")


class TestGeomean:
    def test_value(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_ignores_nonpositive(self):
        assert geomean([0.0, 2.0, 8.0]) == pytest.approx(4.0)

    def test_empty(self):
        assert geomean([]) == 0.0


class TestRenderTable:
    def test_contains_all_cells(self):
        s = render_table("T", ["a", "b"], {"r1": [1.5, 2], "r2": [3.25, "x"]})
        assert "T" in s and "r1" in s and "1.500" in s and "x" in s

    def test_alignment(self):
        s = render_table("T", ["col"], {"long_row_name": [1.0], "r": [2.0]})
        lines = s.splitlines()
        # header separator spans the widest label
        assert len(lines[2]) >= len("long_row_name")
