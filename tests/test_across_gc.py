"""Across-FTL under garbage collection: area pages migrate correctly."""

import pytest

from repro.flash.service import FlashService
from repro.core.across import AcrossFTL


@pytest.fixture
def setup(micro_cfg):
    svc = FlashService(micro_cfg)
    return svc, AcrossFTL(svc, track_payload=True)


class TestAreaRelocation:
    def test_gc_updates_amt(self, setup):
        svc, ftl = setup
        spp = ftl.spp
        ftl.write(2056, 12, 0.0)
        entry = next(ftl.amt.entries())
        old_appn = entry.appn
        # force relocation of the area page directly
        ftl._relocate(old_appn, 0.0, True)
        assert entry.appn != old_appn
        assert svc.array.is_valid(entry.appn)
        assert not svc.array.is_valid(old_appn)
        ftl.check_invariants()

    def test_gc_pressure_preserves_area_data(self, setup):
        svc, ftl = setup
        spp = ftl.spp
        # one across area with stamped data
        stamps = {s: 777 for s in range(2056, 2068)}
        ftl.write(2056, 12, 0.0, stamps)
        # hammer the device until GC has cycled many blocks
        hot = max(4, ftl.logical_pages // 8)
        base = 200  # keep away from the area's lpns (128/129)
        for i in range(3 * svc.geom.num_pages):
            lpn = base + (i % hot)
            ftl.write(lpn * spp, spp, 0.0, {s: i for s in range(lpn * spp, lpn * spp + spp)})
        assert svc.counters.erases > 0
        _, found = ftl.read(2056, 12, 0.0)
        assert all(found[s] == 777 for s in range(2056, 2068))
        ftl.check_invariants()

    def test_sustained_across_workload_under_gc(self, setup):
        svc, ftl = setup
        spp = ftl.spp
        import numpy as np

        rng = np.random.default_rng(3)
        version = {}
        v = 0
        n_boundaries = ftl.logical_pages - 1
        for i in range(2 * svc.geom.num_pages):
            v += 1
            b = int(rng.integers(1, min(64, n_boundaries)))
            boundary = b * spp
            left = int(rng.integers(1, spp // 2))
            right = int(rng.integers(1, spp // 2))
            off, size = boundary - left, left + right
            stamps = {s: v for s in range(off, off + size)}
            for s in range(off, off + size):
                version[s] = v
            ftl.write(off, size, 0.0, stamps)
        assert svc.counters.erases > 0
        ftl.check_invariants()
        svc.array.check_invariants()
        # verify a sample of sectors
        import itertools

        for s, expect in itertools.islice(version.items(), 0, None, 7):
            _, found = ftl.read(s, 1, 0.0)
            assert found.get(s) == expect, s
