"""Exporters and samplers (repro.obs.export / repro.obs.samplers)."""

import json

import pytest

from repro.metrics.counters import FlashOpCounters, OpKind
from repro.obs.export import json_snapshot, prometheus_text, write_prometheus
from repro.obs.samplers import GaugeSampler, SamplerSet


def _counters():
    c = FlashOpCounters()
    c.count_read(OpKind.DATA, 10)
    c.count_read(OpKind.MAP, 3)
    c.count_write(OpKind.DATA, 7)
    c.count_erase()
    c.cache_hits = 5
    c.gc_stalls = 2
    return c


class _FakeTimeline:
    """Two chips: chip 0 busy the whole window, chip 1 idle."""

    def __init__(self):
        import numpy as np

        self.busy_time = np.array([0.0, 0.0])


class TestPrometheusText:
    def test_counter_lines_and_labels(self):
        text = prometheus_text(_counters())
        assert '# TYPE repro_flash_reads_total counter' in text
        assert 'repro_flash_reads_total{kind="data"} 10' in text
        assert 'repro_flash_reads_total{kind="map"} 3' in text
        assert 'repro_flash_writes_total{kind="data"} 7' in text
        assert "repro_flash_erases_total 1" in text
        assert "repro_cache_hits_total 5" in text
        assert "repro_gc_stalls_total 2" in text

    def test_help_lines_emitted_once(self):
        text = prometheus_text(_counters())
        assert text.count("# HELP repro_flash_reads_total") == 1

    def test_gauges_from_samplers(self):
        ss = SamplerSet(10.0)
        ss.add(GaugeSampler("queue_depth", lambda: 4))
        ss.force_sample(50.0)
        text = prometheus_text(_counters(), ss)
        assert "# TYPE repro_queue_depth gauge" in text
        assert "repro_queue_depth 4.0" in text

    def test_chip_utilization_per_chip(self):
        from repro.obs.samplers import ChipUtilizationSampler

        tl = _FakeTimeline()
        cu = ChipUtilizationSampler(tl)
        cu.sample(0.0)
        tl.busy_time[0] = 10.0  # chip 0 fully busy over [0, 10]
        cu.sample(10.0)
        ss = SamplerSet(10.0)
        ss.add(cu)
        text = prometheus_text(_counters(), ss)
        assert 'repro_chip_utilization{chip="0"} 1.0' in text
        assert 'repro_chip_utilization{chip="1"} 0.0' in text

    def test_write_to_file(self, tmp_path):
        p = tmp_path / "m.prom"
        write_prometheus(p, _counters())
        assert p.read_text().endswith("\n")


class TestJsonSnapshot:
    def test_counters_and_series_shape(self):
        ss = SamplerSet(10.0)
        ss.add(GaugeSampler("free_blocks", lambda: 64))
        ss.maybe_sample(15.0)
        snap = json_snapshot(_counters(), ss, {"scheme": "across", "x": [1]})
        assert snap["counters"]["cache_hits"] == 5
        assert snap["counters"]["gc_stalls"] == 2
        assert snap["series"]["free_blocks"]["values"] == [64.0]
        assert snap["extra"]["scheme"] == "across"
        json.dumps(snap)  # must be plain JSON-serialisable

    def test_non_serialisable_extras_raise(self):
        """Silently dropping a value would corrupt archived snapshots;
        unsupported `extra` types must raise, naming the key."""
        with pytest.raises(TypeError, match="'obj'"):
            json_snapshot(_counters(), None, {"obj": object(), "n": 1})

    def test_numpy_scalars_unwrapped(self):
        import numpy as np

        snap = json_snapshot(
            _counters(), None,
            {"n": np.int64(7), "f": np.float64(0.5), "b": np.bool_(True)},
        )
        assert snap["extra"] == {"n": 7, "f": 0.5, "b": True}
        json.dumps(snap)

    def test_nested_non_serialisable_raises(self):
        with pytest.raises(TypeError, match="'bad'"):
            json_snapshot(_counters(), None, {"bad": [object()]})

    def test_ndarray_raises_with_key(self):
        import numpy as np

        with pytest.raises(TypeError, match="'arr'"):
            json_snapshot(_counters(), None, {"arr": np.zeros(3)})


class TestSamplerTick:
    def test_samples_only_on_tick_crossings(self):
        ss = SamplerSet(10.0)
        g = GaugeSampler("g", lambda: 1)
        ss.add(g)
        assert not ss.maybe_sample(3.0)
        assert ss.maybe_sample(10.0)
        assert not ss.maybe_sample(12.0)
        assert ss.maybe_sample(35.0)  # skips empty windows, no catch-up
        assert len(g.values) == 2

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplerSet(0.0)
