"""Trace characterisation (repro.traces.stats) vs a scalar reference."""

import numpy as np
import pytest

from repro.traces.model import OP_READ, OP_WRITE, Trace
from repro.traces.stats import across_page_ratio, characterize
from repro.units import is_across_page


def make_trace(extents, ops=None):
    n = len(extents)
    offsets = np.array([e[0] for e in extents], np.int64)
    sizes = np.array([e[1] for e in extents], np.int64)
    ops = np.array(ops if ops is not None else [OP_WRITE] * n, np.uint8)
    return Trace("t", np.arange(n, dtype=float), ops, offsets, sizes)


class TestAcrossRatio:
    def test_matches_scalar_predicate(self):
        rng = np.random.default_rng(0)
        extents = [
            (int(rng.integers(0, 1000)), int(rng.integers(1, 40)))
            for _ in range(500)
        ]
        t = make_trace(extents)
        expect = sum(is_across_page(o, s, 16) for o, s in extents) / 500
        assert across_page_ratio(t, 8192) == pytest.approx(expect)

    def test_empty_trace(self):
        t = Trace("e", np.empty(0), np.empty(0, np.uint8),
                  np.empty(0, np.int64), np.empty(0, np.int64))
        assert across_page_ratio(t, 8192) == 0.0

    def test_page_size_dependence(self):
        # 12 sectors at offset 10: across at 8K (16 spp), not at 16K
        t = make_trace([(10, 12)])
        assert across_page_ratio(t, 8192) == 1.0
        assert across_page_ratio(t, 16384) == 0.0


class TestCharacterize:
    def test_table2_metrics(self):
        t = make_trace(
            [(0, 16), (8, 16), (0, 8), (100, 4)],
            ops=[OP_WRITE, OP_WRITE, OP_READ, OP_READ],
        )
        st = characterize(t, 8192)
        assert st.requests == 4
        assert st.write_ratio == pytest.approx(0.5)
        assert st.mean_write_kb == pytest.approx(8.0)
        assert st.mean_read_kb == pytest.approx(3.0)
        assert st.across_ratio == pytest.approx(0.25)
        assert st.across_write_ratio == pytest.approx(0.5)
        assert st.across_read_ratio == 0.0

    def test_unaligned_ratio(self):
        t = make_trace([(0, 16), (4, 4)])
        st = characterize(t, 8192)
        assert st.unaligned_ratio == pytest.approx(0.5)

    def test_footprint_mb(self):
        t = make_trace([(2048 - 8, 8)])
        st = characterize(t, 8192)
        assert st.footprint_mb == pytest.approx(1.0)

    def test_table2_row_format(self):
        t = make_trace([(0, 16), (8, 12)])
        row = characterize(t, 8192).table2_row()
        assert row[0] == 2
        assert row[1].endswith("%")
        assert row[2].endswith("KB")

    def test_empty(self):
        t = Trace("e", np.empty(0), np.empty(0, np.uint8),
                  np.empty(0, np.int64), np.empty(0, np.int64))
        st = characterize(t, 8192)
        assert st.requests == 0 and st.across_ratio == 0.0
