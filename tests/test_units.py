"""Unit tests for sector/page arithmetic (repro.units)."""

import pytest

from repro.units import (
    ceil_div,
    is_across_page,
    is_aligned,
    lpn_of_sector,
    lpn_range,
    sectors_per_page,
    spans_pages,
    split_extent,
)


class TestSectorsPerPage:
    def test_8k_page(self):
        assert sectors_per_page(8192) == 16

    def test_4k_page(self):
        assert sectors_per_page(4096) == 8

    def test_16k_page(self):
        assert sectors_per_page(16384) == 32

    def test_non_multiple_rejected(self):
        with pytest.raises(ValueError):
            sectors_per_page(1000)


class TestLpnRange:
    def test_single_page(self):
        assert lpn_range(0, 16, 16) == (0, 1)

    def test_two_pages(self):
        assert lpn_range(8, 12, 16) == (0, 2)

    def test_exact_boundary_end(self):
        # ends exactly on the boundary: still one page
        assert lpn_range(8, 8, 16) == (0, 1)

    def test_starts_on_boundary(self):
        assert lpn_range(16, 4, 16) == (1, 2)

    def test_many_pages(self):
        assert lpn_range(5, 100, 16) == (0, 7)

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            lpn_range(0, 0, 16)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            spans_pages(0, -1, 16)


class TestIsAcrossPage:
    """Paper Figure 1's three cases."""

    def test_paper_figure1_across(self):
        # write(1028K, 8K) with 8K pages: sectors 2056..2072
        assert is_across_page(2056, 16, 16)

    def test_paper_figure1_aligned(self):
        # write(1024K, 24K): aligned, multi-page
        assert not is_across_page(2048, 48, 16)

    def test_paper_figure1_unaligned_large(self):
        # write(1028K, 20K): larger than a page -> merely unaligned
        assert not is_across_page(2056, 40, 16)

    def test_one_sector_never_across(self):
        for off in range(0, 64):
            assert not is_across_page(off, 1, 16)

    def test_full_page_aligned_not_across(self):
        assert not is_across_page(16, 16, 16)

    def test_full_page_shifted_is_across(self):
        assert is_across_page(8, 16, 16)

    def test_two_sectors_straddling(self):
        assert is_across_page(15, 2, 16)

    def test_sub_page_within_page(self):
        assert not is_across_page(2, 6, 16)

    def test_exactly_touching_boundary_not_across(self):
        # [8, 16) ends at the boundary without crossing it
        assert not is_across_page(8, 8, 16)


class TestIsAligned:
    def test_aligned(self):
        assert is_aligned(16, 32, 16)

    def test_unaligned_start(self):
        assert not is_aligned(8, 24, 16)

    def test_unaligned_end(self):
        assert not is_aligned(16, 20, 16)


class TestSplitExtent:
    def test_paper_example(self):
        assert list(split_extent(8, 20, 16)) == [(0, 8, 8), (1, 0, 12)]

    def test_single_piece(self):
        assert list(split_extent(4, 4, 16)) == [(0, 4, 4)]

    def test_full_pages(self):
        assert list(split_extent(16, 32, 16)) == [(1, 0, 16), (2, 0, 16)]

    def test_pieces_cover_extent_exactly(self):
        pieces = list(split_extent(13, 55, 16))
        covered = sum(c for _, _, c in pieces)
        assert covered == 55
        # contiguity
        cursor = 13
        for lpn, rel, count in pieces:
            assert lpn * 16 + rel == cursor
            cursor += count

    def test_lpn_of_sector(self):
        assert lpn_of_sector(15, 16) == 0
        assert lpn_of_sector(16, 16) == 1


class TestCeilDiv:
    def test_exact(self):
        assert ceil_div(32, 16) == 2

    def test_round_up(self):
        assert ceil_div(33, 16) == 3

    def test_zero(self):
        assert ceil_div(0, 16) == 0
