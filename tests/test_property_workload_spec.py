"""Property tests: any valid workload spec compiles to a valid trace."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.traces.model import OP_READ, OP_TRIM, OP_WRITE
from repro.traces.workload_spec import compile_workload, validate_spec

FOOTPRINT = 128 * 1024

phase_strategy = st.fixed_dictionaries(
    {
        "weight": st.floats(0.1, 10.0),
        "pattern": st.sampled_from(
            ["random", "sequential", "boundary", "hotspot"]
        ),
        "op": st.sampled_from(["read", "write", "trim"]),
        "size_kb": st.lists(
            st.floats(0.5, 64.0), min_size=1, max_size=4
        ),
        "align_kb": st.sampled_from([0.5, 4.0, 8.0]),
        "region": st.tuples(
            st.floats(0.0, 0.4), st.floats(0.6, 1.0)
        ),
        "zones": st.integers(1, 64),
        "zipf_s": st.floats(0.5, 2.0),
    }
)

spec_strategy = st.fixed_dictionaries(
    {
        "name": st.just("prop"),
        "requests": st.integers(1, 400),
        "interarrival_ms": st.floats(0.1, 10.0),
        "seed": st.integers(0, 2**16),
        "phases": st.lists(phase_strategy, min_size=1, max_size=4),
    }
)


@given(doc=spec_strategy)
@settings(max_examples=60, deadline=None)
def test_compiled_trace_is_well_formed(doc):
    spec = validate_spec(doc)
    trace = compile_workload(spec, FOOTPRINT)
    assert len(trace) == doc["requests"]
    # every request stays inside the footprint with positive size
    assert (trace.sizes >= 1).all()
    assert (trace.offsets >= 0).all()
    assert int((trace.offsets + trace.sizes).max()) <= FOOTPRINT
    # arrivals are sorted
    import numpy as np

    assert (np.diff(trace.times) >= 0).all()
    # ops only from the declared set
    assert set(trace.ops.tolist()) <= {OP_READ, OP_WRITE, OP_TRIM}


@given(doc=spec_strategy)
@settings(max_examples=20, deadline=None)
def test_compile_is_deterministic(doc):
    import numpy as np

    spec = validate_spec(doc)
    a = compile_workload(spec, FOOTPRINT)
    b = compile_workload(spec, FOOTPRINT)
    assert np.array_equal(a.offsets, b.offsets)
    assert np.array_equal(a.sizes, b.sizes)
    assert np.array_equal(a.ops, b.ops)
