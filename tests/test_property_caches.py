"""Model-based property tests for the DRAM caches.

The DataCache and MappingCache are checked against simple reference
models under random operation sequences — the kind of stateful
behaviour (LRU order, dirty bits, partial coverage) unit tests only
sample.
"""

from collections import OrderedDict

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.buffer import DataCache
from repro.config import SSDConfig
from repro.flash.service import FlashService
from repro.ftl.mapping_cache import MappingCache

SPP = 16
MAX_SECTOR = 64 * SPP


# ----------------------------------------------------------------------
# DataCache vs a plain per-sector dict + LRU list
# ----------------------------------------------------------------------
data_ops = st.lists(
    st.tuples(
        st.sampled_from(["put", "hit?", "discard"]),
        st.integers(0, MAX_SECTOR - 1),
        st.integers(1, 2 * SPP),
    ),
    min_size=1,
    max_size=120,
)


@given(ops=data_ops, capacity=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_datacache_matches_reference(ops, capacity):
    cache = DataCache(capacity_pages=capacity, spp=SPP)
    # reference: sector -> stamp for *cached* sectors, plus LPN LRU
    ref_sectors: dict[int, int] = {}
    lru: OrderedDict[int, None] = OrderedDict()

    def ref_evict():
        while len(lru) > capacity:
            lpn, _ = lru.popitem(last=False)
            for s in range(lpn * SPP, (lpn + 1) * SPP):
                ref_sectors.pop(s, None)

    stamp = 0
    for op, offset, size in ops:
        size = min(size, MAX_SECTOR - offset)
        if size <= 0:
            continue
        if op == "put":
            stamp += 1
            cache.put(offset, size, {s: stamp for s in range(offset, offset + size)})
            for s in range(offset, offset + size):
                ref_sectors[s] = stamp
            for lpn in range(offset // SPP, (offset + size - 1) // SPP + 1):
                lru.pop(lpn, None)
                lru[lpn] = None
            ref_evict()
        elif op == "discard":
            cache.discard(offset, size)
            for s in range(offset, offset + size):
                ref_sectors.pop(s, None)
            for lpn in range(offset // SPP, (offset + size - 1) // SPP + 1):
                if not any(
                    s in ref_sectors
                    for s in range(lpn * SPP, (lpn + 1) * SPP)
                ):
                    lru.pop(lpn, None)
        else:  # hit?
            expect = all(
                s in ref_sectors for s in range(offset, offset + size)
            )
            got = cache.full_hit(offset, size)
            # the model can only disagree by being *more* generous: the
            # cache may have dropped an LPN the model kept? No — both
            # evict identically; demand equality.
            assert got == expect, (offset, size)
            if got:
                stamps = cache.get_stamps(offset, size)
                for s in range(offset, offset + size):
                    assert stamps.get(s) == ref_sectors.get(s), s


# ----------------------------------------------------------------------
# MappingCache vs a reference LRU of translation pages
# ----------------------------------------------------------------------
map_ops = st.lists(
    st.tuples(st.integers(0, 63), st.booleans()),
    min_size=1,
    max_size=150,
)


@given(ops=map_ops, capacity_pages=st.integers(1, 4))
@settings(max_examples=60, deadline=None)
def test_mapping_cache_matches_reference(ops, capacity_pages):
    EPP = 4
    svc = FlashService(SSDConfig.tiny())
    flash_writes: list[int] = []
    flash_reads: list[int] = []
    cache = MappingCache(
        svc,
        entries_per_page=EPP,
        capacity_entries=capacity_pages * EPP,
        program_map_page=lambda tvpn, now, timed: flash_writes.append(tvpn)
        or now,
        read_map_page=lambda tvpn, now, timed: flash_reads.append(tvpn) or now,
    )
    # reference model
    ref: OrderedDict[int, bool] = OrderedDict()
    on_flash: set[int] = set()
    ref_writes: list[int] = []
    ref_reads: list[int] = []
    for key, dirty in ops:
        tvpn = key // EPP
        if tvpn in ref:
            ref.move_to_end(tvpn)
            if dirty:
                ref[tvpn] = True
        else:
            if tvpn in on_flash:
                ref_reads.append(tvpn)
            ref[tvpn] = dirty
            while len(ref) > capacity_pages:
                old, was_dirty = ref.popitem(last=False)
                if was_dirty:
                    ref_writes.append(old)
                    on_flash.add(old)
        cache.access(key, 0.0, dirty=dirty)
    assert flash_writes == ref_writes
    assert flash_reads == ref_reads
    assert cache.cached_pages == len(ref)
