"""Parallel sweep execution and the persistent result store
(repro.experiments.parallel)."""

import json

import pytest

from repro.config import SCHEMES, SimConfig, SSDConfig
from repro.experiments.parallel import (
    ResultStore,
    RunSpec,
    execute_runs,
    run_filename,
    run_key,
    sanitize_fragment,
    trace_fingerprint,
)
from repro.experiments.runner import ExperimentContext
from repro.experiments.workloads import lun_specs
from repro.metrics.report import SimulationReport
from repro.traces.synthetic import VDIWorkloadGenerator


@pytest.fixture(scope="module")
def tiny_setup():
    cfg = SSDConfig.tiny()
    sim_cfg = SimConfig(aged_used=0.3, aged_valid=0.1)
    spec = lun_specs(cfg, scale=0.0005)[0]
    trace = VDIWorkloadGenerator(spec).generate()
    return cfg, sim_cfg, trace


def _specs(tiny_setup, schemes=SCHEMES):
    cfg, sim_cfg, trace = tiny_setup
    return [RunSpec.make(s, trace, cfg, sim_cfg) for s in schemes]


def _comparable(report: SimulationReport) -> dict:
    """to_dict minus wall_seconds (the only run-to-run nondeterminism)."""
    d = report.to_dict()
    d.pop("wall_seconds")
    return d


class TestNaming:
    def test_sanitize_passthrough(self):
        assert sanitize_fragment("lun1") == "lun1"
        assert sanitize_fragment(0.25) == "0.25"

    def test_sanitize_hostile_values(self):
        assert "/" not in sanitize_fragment("../../etc/passwd")
        assert sanitize_fragment("a b\tc") == "a-b-c"
        assert sanitize_fragment("(1, 'x')") == "1-x"

    def test_sanitize_never_empty(self):
        assert sanitize_fragment("") == "x"
        assert sanitize_fragment("///") == "x"

    def test_run_filename_scheme(self):
        name = run_filename("lun1", "across", 8192, {"gc_policy": "greedy"})
        assert name == "lun1__across__8k__gc_policy-greedy"

    def test_run_filename_sorted_kwargs(self):
        a = run_filename("t", "ftl", 4096, {"b": 2, "a": 1})
        b = run_filename("t", "ftl", 4096, {"a": 1, "b": 2})
        assert a == b


class TestRunKey:
    def test_stable(self, tiny_setup):
        cfg, sim_cfg, trace = tiny_setup
        assert run_key("ftl", trace, cfg, sim_cfg) == run_key(
            "ftl", trace, cfg, sim_cfg
        )

    def test_sensitive_to_inputs(self, tiny_setup):
        cfg, sim_cfg, trace = tiny_setup
        base = run_key("ftl", trace, cfg, sim_cfg)
        assert run_key("mrsm", trace, cfg, sim_cfg) != base
        assert run_key("ftl", trace, cfg.replace(gc_threshold=0.05), sim_cfg) != base
        assert (
            run_key("ftl", trace, cfg, SimConfig(aged_used=0.5, aged_valid=0.2))
            != base
        )
        assert run_key("ftl", trace, cfg, sim_cfg, {"k": 1}) != base

    def test_progress_is_cosmetic(self, tiny_setup):
        cfg, sim_cfg, trace = tiny_setup
        import dataclasses

        noisy = dataclasses.replace(sim_cfg, progress=True)
        assert run_key("ftl", trace, cfg, noisy) == run_key(
            "ftl", trace, cfg, sim_cfg
        )

    def test_trace_fingerprint_sees_content(self, tiny_setup):
        _, _, trace = tiny_setup
        import copy

        other = copy.deepcopy(trace)
        other.sizes = other.sizes.copy()
        other.sizes[0] += 1
        assert trace_fingerprint(other) != trace_fingerprint(trace)


class TestReportRoundTrip:
    def test_from_dict_equals_original(self, tiny_setup):
        (report,) = execute_runs(_specs(tiny_setup, ["across"])).reports
        rebuilt = SimulationReport.from_dict(
            json.loads(report.to_json())
        )
        assert rebuilt == report  # dataclass eq: counters, latency, extra
        assert rebuilt.to_dict() == report.to_dict()

    def test_latency_distribution_survives(self, tiny_setup):
        (report,) = execute_runs(_specs(tiny_setup, ["ftl"])).reports
        rebuilt = SimulationReport.from_json(report.to_json())
        for key, summ in report.latency.summaries().items():
            assert rebuilt.latency.summary(key) == summ

    def test_counters_survive_including_kinds(self, tiny_setup):
        (report,) = execute_runs(_specs(tiny_setup, ["mrsm"])).reports
        rebuilt = SimulationReport.from_json(report.to_json())
        assert rebuilt.counters == report.counters
        assert rebuilt.counters.map_writes == report.counters.map_writes
        assert rebuilt.erase_count == report.erase_count


class TestResultStore:
    def test_miss_then_hit(self, tiny_setup, tmp_path):
        store = ResultStore(tmp_path / "store")
        (spec,) = _specs(tiny_setup, ["ftl"])
        assert store.get(spec) is None
        out = execute_runs([spec], store=store)
        assert out.executed == 1 and out.cached == 0
        again = store.get(spec)
        assert again is not None
        assert _comparable(again) == _comparable(out.reports[0])

    def test_rerun_executes_nothing(self, tiny_setup, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = _specs(tiny_setup)
        first = execute_runs(specs, store=store)
        second = execute_runs(specs, store=store)
        assert first.executed == len(specs)
        assert second.executed == 0
        assert second.cached == len(specs)
        for a, b in zip(first.reports, second.reports):
            assert _comparable(a) == _comparable(b)

    def test_corrupt_file_is_a_miss(self, tiny_setup, tmp_path):
        store = ResultStore(tmp_path / "store")
        (spec,) = _specs(tiny_setup, ["ftl"])
        execute_runs([spec], store=store)
        store.path_for(spec).write_text("{not json")
        assert store.get(spec) is None

    def test_key_mismatch_is_a_miss(self, tiny_setup, tmp_path):
        store = ResultStore(tmp_path / "store")
        (spec,) = _specs(tiny_setup, ["ftl"])
        execute_runs([spec], store=store)
        doc = json.loads(store.path_for(spec).read_text())
        doc["key"] = "0" * 64
        store.path_for(spec).write_text(json.dumps(doc))
        assert store.get(spec) is None

    def test_index_and_len(self, tiny_setup, tmp_path):
        store = ResultStore(tmp_path / "store")
        execute_runs(_specs(tiny_setup, ["ftl", "across"]), store=store)
        assert len(store) == 2
        idx = store.index()
        assert {e["scheme"] for e in idx} == {"ftl", "across"}
        assert all(e["key"] for e in idx)

    def test_clear(self, tiny_setup, tmp_path):
        store = ResultStore(tmp_path / "store")
        execute_runs(_specs(tiny_setup, ["ftl"]), store=store)
        assert store.clear() == 1
        assert len(store) == 0

    def test_fresh_bypasses_lookup(self, tiny_setup, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = _specs(tiny_setup, ["ftl"])
        execute_runs(specs, store=store)
        out = execute_runs(specs, store=store, fresh=True)
        assert out.executed == 1 and out.cached == 0


class TestParallelExecution:
    def test_jobs4_equals_jobs1(self, tiny_setup):
        """Worker results are bit-identical to in-process runs."""
        specs = _specs(tiny_setup)
        serial = execute_runs(specs, jobs=1)
        fanned = execute_runs(specs, jobs=4)
        assert fanned.executed == len(specs)
        for a, b in zip(serial.reports, fanned.reports):
            assert _comparable(a) == _comparable(b)
            assert a.latency == b.latency  # full sample distributions

    def test_order_preserved(self, tiny_setup):
        specs = _specs(tiny_setup)
        out = execute_runs(specs, jobs=3)
        assert [r.scheme for r in out.reports] == list(SCHEMES)

    def test_parallel_fills_store(self, tiny_setup, tmp_path):
        store = ResultStore(tmp_path / "store")
        specs = _specs(tiny_setup)
        execute_runs(specs, jobs=3, store=store)
        assert len(store) == len(specs)
        again = execute_runs(specs, jobs=3, store=store)
        assert again.executed == 0 and again.cached == len(specs)


@pytest.fixture(scope="module")
def micro_ctx_kwargs():
    cfg = SSDConfig(
        channels=2,
        chips_per_channel=2,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=32,
        pages_per_block=16,
        page_size_bytes=8 * 1024,
        write_buffer_bytes=512 * 1024,
    )
    return dict(
        cfg=cfg,
        sim_cfg=SimConfig(aged_used=0.6, aged_valid=0.3),
        scale=0.002,
    )


class TestContextIntegration:
    def test_parallel_sweep_equals_serial(self, micro_ctx_kwargs):
        """--jobs 4 vs --jobs 1 on a lun sweep: reports must be equal
        (counters, latency summaries, erase counts)."""
        serial = ExperimentContext(**micro_ctx_kwargs, jobs=1)
        fanned = ExperimentContext(**micro_ctx_kwargs, jobs=4)
        a = serial.sweep(schemes=("ftl", "across"))
        b = fanned.sweep(schemes=("ftl", "across"))
        assert set(a) == set(b)
        for name in a:
            for s in a[name]:
                assert _comparable(a[name][s]) == _comparable(b[name][s])

    def test_sweep_fills_memo_for_run(self, micro_ctx_kwargs):
        ctx = ExperimentContext(**micro_ctx_kwargs, jobs=2)
        ctx.sweep(schemes=("ftl",))
        rep = ctx.run("lun1", "ftl")  # memo hit, no new simulation
        assert rep is ctx.run("lun1", "ftl")

    def test_store_reused_across_contexts(self, micro_ctx_kwargs, tmp_path):
        store = ResultStore(tmp_path / "store")
        first = ExperimentContext(**micro_ctx_kwargs, jobs=2, store=store)
        first.sweep(schemes=("ftl",))
        executed_before = store.puts
        second = ExperimentContext(**micro_ctx_kwargs, store=store)
        out = second.sweep(schemes=("ftl",))
        assert store.puts == executed_before  # nothing re-simulated
        assert store.hits >= 6
        for name, per_scheme in out.items():
            ref = first.run(name, "ftl")
            assert _comparable(per_scheme["ftl"]) == _comparable(ref)

    def test_prewarm_counts_points(self, micro_ctx_kwargs):
        ctx = ExperimentContext(**micro_ctx_kwargs, jobs=2)
        n = ctx.prewarm(schemes=("ftl",))
        assert n == 6  # six luns x one scheme

    def test_save_results_sanitized_names(self, micro_ctx_kwargs, tmp_path):
        ctx = ExperimentContext(**micro_ctx_kwargs)
        ctx.run("lun1", "ftl", rmw_enabled=False)
        n = ctx.save_results(tmp_path / "archive")
        assert n == 1
        index = json.loads((tmp_path / "archive" / "index.json").read_text())
        fname = index[0]["file"]
        assert fname == "lun1__ftl__8k__rmw_enabled-False.json"
        rebuilt = SimulationReport.from_json(
            (tmp_path / "archive" / fname).read_text()
        )
        assert rebuilt.scheme == "ftl"

    def test_save_results_decollides(self, micro_ctx_kwargs, tmp_path):
        """Two kwarg values that sanitise identically must not overwrite
        each other's archive file."""
        ctx = ExperimentContext(**micro_ctx_kwargs)
        rep = ctx.run("lun1", "ftl")
        # fake two memo entries whose kwargs sanitise to the same
        # fragment ('a b' and 'a-b' both become 'a-b')
        ctx._runs[("lun1", "ftl", 8 * 1024, (("k", "a b"),))] = rep
        ctx._runs[("lun1", "ftl", 8 * 1024, (("k", "a-b"),))] = rep
        n = ctx.save_results(tmp_path / "archive")
        assert n == 3
        index = json.loads((tmp_path / "archive" / "index.json").read_text())
        names = [e["file"] for e in index]
        assert len(set(names)) == 3  # de-collided
        assert sorted(names)[2].endswith("__2.json")


class TestWorkerFailure:
    """A raising worker must not abort the sweep or lose siblings."""

    def _mixed_specs(self, tiny_setup):
        cfg, sim_cfg, trace = tiny_setup
        good = [RunSpec.make(s, trace, cfg, sim_cfg) for s in ("ftl", "across")]
        # unknown scheme: raises inside the worker, after pickling fine
        bad = RunSpec.make("bogus", trace, cfg, sim_cfg)
        return [good[0], bad, good[1]]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_continue_keeps_siblings(self, tiny_setup, tmp_path, jobs):
        store = ResultStore(tmp_path / "store")
        specs = self._mixed_specs(tiny_setup)
        out = execute_runs(
            specs, jobs=jobs, store=store, on_error="continue"
        )
        assert not out.ok
        assert [r is None for r in out.reports] == [False, True, False]
        assert len(out.failures) == 1
        label, exc = out.failures[0]
        assert label == specs[1].label
        assert "bogus" in str(exc)
        # completed siblings were persisted despite the failure
        assert specs[0] in store and specs[2] in store
        assert specs[1] not in store

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_raise_after_siblings_stored(self, tiny_setup, tmp_path, jobs):
        from repro.errors import SweepError

        store = ResultStore(tmp_path / "store")
        specs = self._mixed_specs(tiny_setup)
        with pytest.raises(SweepError) as ei:
            execute_runs(specs, jobs=jobs, store=store)
        assert specs[1].label in str(ei.value)
        assert len(ei.value.failures) == 1
        # fail-fast still drained the batch first: siblings are stored
        assert specs[0] in store and specs[2] in store

    def test_failed_runs_rerun_next_time(self, tiny_setup, tmp_path):
        """A failure is not cached: fixing the spec re-executes it."""
        store = ResultStore(tmp_path / "store")
        specs = self._mixed_specs(tiny_setup)
        execute_runs(specs, store=store, on_error="continue")
        good = execute_runs(specs[:1] + specs[2:], store=store)
        assert good.ok
        assert good.executed == 0 and good.cached == 2

    def test_duplicate_of_failing_spec_mirrors_failure(
        self, tiny_setup, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        specs = self._mixed_specs(tiny_setup)
        batch = specs + [specs[1]]  # same-batch duplicate of the bad spec
        out = execute_runs(batch, store=store, on_error="continue")
        assert out.reports[1] is None and out.reports[3] is None
        assert len(out.failures) == 2

    def test_invalid_on_error_rejected(self, tiny_setup):
        with pytest.raises(ValueError):
            execute_runs(_specs(tiny_setup)[:1], on_error="explode")


class TestSingleFlight:
    """Concurrent identical specs must simulate exactly once."""

    def test_get_or_run_coalesces_threads(self, tiny_setup, tmp_path):
        import threading

        store = ResultStore(tmp_path / "store")
        spec = _specs(tiny_setup)[:1][0]
        executions = []
        gate = threading.Barrier(4)

        def runner(s):
            executions.append(s.key())
            from repro.experiments.parallel import _execute_spec

            return _execute_spec(s)

        results = []

        def worker():
            gate.wait()
            results.append(store.get_or_run(spec, runner=runner))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(executions) == 1
        assert len(results) == 4
        # exactly one simulated (cached=False), the rest store-served
        assert sorted(cached for _, cached in results) == [
            False, True, True, True
        ]
        stats = store.stats()
        assert stats["inflight"] == 0
        assert stats["coalesced"] >= 1

    def test_same_batch_duplicates_execute_once(self, tiny_setup, tmp_path):
        store = ResultStore(tmp_path / "store")
        spec = _specs(tiny_setup)[0]
        out = execute_runs([spec, spec, spec], store=store)
        assert out.executed == 1 and out.cached == 2
        assert [_comparable(r) for r in out.reports[1:]] == [
            _comparable(out.reports[0])
        ] * 2

    def test_stats_snapshot_is_consistent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        stats = store.stats()
        assert stats == {
            "hits": 0, "misses": 0, "puts": 0, "coalesced": 0, "inflight": 0
        }
