"""Span assembly and Chrome-trace export (repro.obs.trace)."""

import json

from repro.obs.events import (
    BufferLookup,
    EventBus,
    FlashOp,
    FTLDecision,
    GCEvent,
    GCStall,
    RequestArrive,
    RequestComplete,
)
from repro.obs.trace import REQUEST_LANES, TraceRecorder, load_chrome
from repro.traces.model import OP_READ, OP_WRITE


def _recorder():
    bus = EventBus()
    return bus, TraceRecorder(bus)


def _emit_request(bus, rid, t0, *, op=OP_WRITE, latency=0.5, paths=(),
                  flash=0, hit=None):
    bus.current_request = rid
    bus.emit(RequestArrive(t0, rid, op, rid * 8, 8, False))
    if hit is not None:
        bus.emit(BufferLookup(t0, rid, hit))
    for p in paths:
        bus.emit(FTLDecision(t0, rid, p, rid))
    for i in range(flash):
        bus.emit(FlashOp(t0, rid, "program", "data", i % 4,
                         t0 + latency, 100 + i))
    bus.emit(RequestComplete(t0 + latency, rid, latency))


class TestSpanAssembly:
    def test_span_from_event_sequence(self):
        bus, rec = _recorder()
        _emit_request(bus, 0, 0.0, paths=["direct"], flash=2, hit=False)
        assert len(rec) == 1
        span = rec.spans[0]
        assert span["rid"] == 0
        assert span["op"] == "write"
        assert span["paths"] == ["direct"]
        assert span["buffer"] == "miss"
        assert len(span["flash_ops"]) == 2
        assert span["latency_ms"] == 0.5
        assert span["finish_ms"] == 0.5

    def test_spans_complete_out_of_order(self):
        bus, rec = _recorder()
        bus.emit(RequestArrive(0.0, 0, OP_READ, 0, 8, False))
        bus.emit(RequestArrive(0.1, 1, OP_READ, 8, 8, True))
        bus.emit(RequestComplete(0.2, 1, 0.1))
        bus.emit(RequestComplete(0.9, 0, 0.9))
        assert [s["rid"] for s in rec.spans] == [1, 0]
        assert rec.spans[0]["across"] is True

    def test_orphan_flash_ops_kept_separately(self):
        bus, rec = _recorder()
        bus.emit(FlashOp(5.0, -1, "program", "map", 0, 5.2, 7))
        assert rec.spans == []
        assert len(rec.orphan_flash) == 1

    def test_gc_attributed_to_current_request(self):
        bus, rec = _recorder()
        bus.current_request = 3
        bus.emit(RequestArrive(0.0, 3, OP_WRITE, 0, 8, False))
        bus.emit(GCEvent(0.1, 0, 12, 3))
        bus.emit(RequestComplete(0.4, 3, 0.4))
        assert rec.spans[0]["gc_victims"] == 1
        assert len(rec.gc_events) == 1

    def test_path_histogram(self):
        bus, rec = _recorder()
        _emit_request(bus, 0, 0.0, paths=["direct", "amerge"])
        _emit_request(bus, 1, 1.0, paths=["direct"])
        assert rec.path_histogram() == {"direct": 2, "amerge": 1}


class TestChromeExport:
    def test_chrome_json_shape(self, tmp_path):
        bus, rec = _recorder()
        for rid in range(3):
            _emit_request(bus, rid, rid * 1.0, flash=1)
        bus.emit(GCStall(2.5, 0, 1))
        p = tmp_path / "trace.json"
        rec.write_chrome(p)
        doc = load_chrome(p)
        assert doc["displayTimeUnit"] == "ms"
        evs = doc["traceEvents"]
        # metadata names both processes
        meta = [e for e in evs if e["ph"] == "M"]
        assert {e["pid"] for e in meta} == {1, 2}
        # one request slice per span, on pid 1, with us timestamps
        slices = [e for e in evs if e["ph"] == "X" and e["pid"] == 1]
        assert len(slices) == 3
        assert slices[0]["ts"] == 0.0 and slices[0]["dur"] == 500.0
        # flash commands render on their chip's row of pid 2
        chips = [e for e in evs if e["ph"] == "X" and e["pid"] == 2]
        assert len(chips) == 3
        assert all(e["tid"] == 0 for e in chips)
        # the stall is an instant event
        stalls = [e for e in evs if e["ph"] == "i"]
        assert len(stalls) == 1 and stalls[0]["name"] == "GC stall"
        # the whole document must be plain JSON (no numpy leakage)
        json.dumps(doc)

    def test_overlapping_requests_get_distinct_lanes(self):
        bus, rec = _recorder()
        for rid in range(4):  # all four overlap in [0, 10]
            bus.emit(RequestArrive(float(rid), rid, OP_READ, 0, 8, False))
        for rid in range(4):
            bus.emit(RequestComplete(10.0 + rid, rid, 10.0))
        lanes = [
            e["tid"]
            for e in rec.to_chrome()["traceEvents"]
            if e["ph"] == "X" and e["pid"] == 1
        ]
        assert len(set(lanes)) == 4
        assert all(0 <= lane < REQUEST_LANES for lane in lanes)

    def test_jsonl_round_trip(self, tmp_path):
        bus, rec = _recorder()
        _emit_request(bus, 0, 0.0, paths=["page_write"])
        _emit_request(bus, 1, 1.0, op=OP_READ, paths=["page_read"])
        p = tmp_path / "spans.jsonl"
        rec.write_jsonl(p)
        lines = [json.loads(line) for line in p.read_text().splitlines()]
        assert len(lines) == 2
        assert lines[1]["op"] == "read"
        assert lines[1]["paths"] == ["page_read"]
