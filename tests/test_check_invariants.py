"""Runtime invariant checker (repro.check.invariants): clean runs pass,
seeded corruption of every checked layer is caught."""

import numpy as np
import pytest

from repro.check.invariants import InvariantChecker
from repro.config import CheckConfig, SCHEMES, SimConfig, SSDConfig
from repro.errors import (
    ConfigError,
    FlashProtocolError,
    InvariantViolation,
    MappingError,
)
from repro.experiments.runner import run_trace
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.sim.engine import Simulator
from repro.traces.model import Trace
from repro.traces.synthetic import SyntheticSpec, generate_trace


def small_trace(cfg, n=600, seed=5):
    spec = SyntheticSpec(
        "chk",
        n,
        0.6,
        0.25,
        9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.7),
        seed=seed,
    )
    return generate_trace(spec)


def checked(every=100):
    return SimConfig(check_oracle=True).replace_check(
        enabled=True, every=every
    )


# ----------------------------------------------------------------------
# configuration surface
# ----------------------------------------------------------------------
class TestCheckConfig:
    def test_disabled_by_default(self):
        cfg = SimConfig()
        assert not cfg.check.enabled
        assert cfg.check.every == 0

    def test_negative_cadence_rejected(self):
        with pytest.raises(ConfigError):
            CheckConfig(enabled=True, every=-1).validate()

    def test_cadence_requires_enabled(self):
        with pytest.raises(ConfigError):
            CheckConfig(enabled=False, every=64).validate()
        with pytest.raises(ConfigError):
            SimConfig(check=CheckConfig(every=64)).validate()

    def test_full_and_replace_check(self):
        full = CheckConfig.full(every=32)
        assert full.enabled and full.every == 32
        cfg = SimConfig().replace_check(enabled=True, every=16)
        cfg.validate()
        assert cfg.check.enabled and cfg.check.every == 16

    def test_disabled_run_has_no_checker(self, tiny_cfg):
        svc = FlashService(tiny_cfg)
        sim = Simulator(make_ftl("ftl", svc), SimConfig())
        assert sim.checker is None
        rep = sim.run(small_trace(tiny_cfg, n=50))
        assert "check_sweeps" not in rep.extra
        assert "check_read_digest" not in rep.extra


# ----------------------------------------------------------------------
# clean runs pass under the checker
# ----------------------------------------------------------------------
class TestCleanRuns:
    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_scheme_passes_with_sweeps(self, tiny_cfg, scheme):
        rep = run_trace(scheme, small_trace(tiny_cfg), tiny_cfg, checked())
        # 600 requests / cadence 100 periodic sweeps + the final one
        assert rep.extra["check_sweeps"] >= 6
        assert len(rep.extra["check_read_digest"]) == 64

    def test_end_of_run_only_cadence(self, tiny_cfg):
        cfg = SimConfig(check_oracle=True).replace_check(
            enabled=True, every=0
        )
        rep = run_trace("ftl", small_trace(tiny_cfg, n=80), tiny_cfg, cfg)
        assert rep.extra["check_sweeps"] == 1

    def test_aged_device_passes(self, tiny_cfg):
        cfg = SimConfig(
            check_oracle=True, aged_used=0.6, aged_valid=0.35
        ).replace_check(enabled=True, every=100)
        rep = run_trace("across", small_trace(tiny_cfg), tiny_cfg, cfg)
        assert rep.extra["check_sweeps"] >= 6

    def test_hybrid_scheme_supported(self, tiny_cfg):
        # BAST manages blocks itself (uses_generic_gc=False): the
        # reachability law is skipped but every other sweep still runs
        svc = FlashService(tiny_cfg)
        ftl = make_ftl("bast", svc, track_payload=True)
        sim = Simulator(ftl, checked())
        rep = sim.run(small_trace(tiny_cfg, n=300))
        assert rep.extra["check_sweeps"] >= 3


# ----------------------------------------------------------------------
# corruption detection, layer by layer
# ----------------------------------------------------------------------
def run_checker(cfg, scheme="ftl", n=300):
    """A finished simulation plus a fresh checker over its state."""
    svc = FlashService(cfg)
    ftl = make_ftl(scheme, svc, track_payload=True)
    sim = Simulator(ftl, checked())
    sim.run(small_trace(cfg, n=n))
    chk = InvariantChecker(ftl)
    chk.check_now()  # baseline: the real state passes
    return svc, ftl, chk


class TestCorruptionDetection:
    def test_counter_conservation(self, tiny_cfg):
        from repro.metrics.counters import OpKind

        svc, _ftl, chk = run_checker(tiny_cfg)
        svc.counters.writes[OpKind.DATA] += 1
        with pytest.raises(InvariantViolation, match="program conservation"):
            chk.check_now()

    def test_erase_conservation(self, tiny_cfg):
        svc, _ftl, chk = run_checker(tiny_cfg)
        svc.counters.erases += 2
        with pytest.raises(InvariantViolation, match="erase conservation"):
            chk.check_now()

    def test_free_pool_theft(self, tiny_cfg):
        svc, _ftl, chk = run_checker(tiny_cfg)
        plane = next(
            p for p in range(svc.geom.num_planes) if svc.array._free_blocks[p]
        )
        svc.array._free_blocks[plane].pop()
        with pytest.raises(InvariantViolation, match="absent from its plane"):
            chk.check_now()

    def test_timeline_reversal(self, tiny_cfg):
        svc, _ftl, chk = run_checker(tiny_cfg)
        svc.timeline.busy_until[0] -= 1.0
        with pytest.raises(InvariantViolation, match="moved backwards"):
            chk.check_now()

    def test_unreachable_valid_page(self, tiny_cfg):
        _svc, ftl, chk = run_checker(tiny_cfg)
        lpn = int(np.nonzero(ftl.pmt >= 0)[0][0])
        ftl.pmt[lpn] = -1  # drop the mapping, leave the page valid
        ftl.pmt_mask[lpn] = 0
        with pytest.raises(InvariantViolation, match="unreachable"):
            chk.check_now()

    def test_double_claimed_page(self, tiny_cfg):
        _svc, ftl, chk = run_checker(tiny_cfg)
        mapped = np.nonzero(ftl.pmt >= 0)[0]
        a, b = int(mapped[0]), int(mapped[1])
        ftl.pmt[b] = ftl.pmt[a]  # two LPNs now claim one PPN
        with pytest.raises(MappingError):
            chk.check_now()

    def test_amt_corruption(self, tiny_cfg):
        svc = FlashService(tiny_cfg)
        ftl = make_ftl("across", svc, track_payload=True)
        sim = Simulator(ftl, checked())
        sim.run(small_trace(tiny_cfg, n=300))
        chk = InvariantChecker(ftl)
        chk.check_now()
        entry = next(ftl.amt.entries())
        ftl.amt._free.append(entry.aidx)  # free an index still live
        with pytest.raises(MappingError):
            chk.check_now()

    def test_flash_state_corruption(self, tiny_cfg):
        svc, _ftl, chk = run_checker(tiny_cfg)
        block = int(np.nonzero(svc.array.write_ptr > 1)[0][0])
        svc.array.write_ptr[block] -= 1  # a programmed page now sits
        with pytest.raises(FlashProtocolError):  # past the write pointer
            chk.check_now()


# ----------------------------------------------------------------------
# engine wiring
# ----------------------------------------------------------------------
class TestEngineWiring:
    def test_cadence_controls_sweep_count(self, tiny_cfg):
        trace = small_trace(tiny_cfg, n=200)
        svc = FlashService(tiny_cfg)
        sim = Simulator(make_ftl("ftl", svc), checked(every=50))
        rep = sim.run(trace)
        assert rep.extra["check_sweeps"] == 200 // 50 + 1

    def test_digest_deterministic(self, tiny_cfg):
        trace = small_trace(tiny_cfg)
        a = run_trace("ftl", trace, tiny_cfg, checked())
        b = run_trace("ftl", trace, tiny_cfg, checked())
        assert (
            a.extra["check_read_digest"] == b.extra["check_read_digest"]
        )

    def test_digest_depends_on_contents(self, tiny_cfg):
        trace = small_trace(tiny_cfg)
        base = run_trace("ftl", trace, tiny_cfg, checked())
        other = run_trace(
            "ftl", small_trace(tiny_cfg, seed=6), tiny_cfg, checked()
        )
        assert (
            base.extra["check_read_digest"]
            != other.extra["check_read_digest"]
        )

    def test_violation_surfaces_from_run(self, micro_cfg):
        """A checker wired at cadence aborts the run when state is bad."""
        svc = FlashService(micro_cfg)
        ftl = make_ftl("ftl", svc, track_payload=True)
        sim = Simulator(ftl, checked(every=10))
        spp = ftl.spp
        n = 40
        from repro.traces.model import OP_WRITE

        trace = Trace(
            "sabotage",
            np.arange(n, dtype=np.float64),
            np.full(n, OP_WRITE, dtype=np.uint8),
            (np.arange(n, dtype=np.int64) % 16) * spp,
            np.full(n, spp, dtype=np.int64),
        )
        orig = sim.checker.maybe_check

        def sabotage(done):
            from repro.metrics.counters import OpKind

            if done == 20:
                svc.counters.writes[OpKind.DATA] += 1
            orig(done)

        sim.checker.maybe_check = sabotage
        with pytest.raises(InvariantViolation):
            sim.run(trace)
