"""Policy determinism: pooled == in-process per policy, and the greedy
default is digest-identical to the pre-refactor engine (the committed
bench baseline)."""

import json
from pathlib import Path

import pytest

from repro.config import GC_POLICIES, FaultConfig, SimConfig
from repro.experiments.benchgate import report_digest, scenarios
from repro.experiments.parallel import RunSpec, execute_runs
from repro.experiments.runner import run_trace

BASELINE = Path(__file__).resolve().parents[1] / "BENCH_baseline.json"


@pytest.fixture
def faulty_sim() -> SimConfig:
    return SimConfig(
        aged_used=0.90,
        aged_valid=0.398,
        seed=5,
        faults=FaultConfig.stress(seed=7),
    )


class TestJobsDeterminism:
    @pytest.mark.parametrize("policy", GC_POLICIES)
    def test_jobs1_vs_jobs4_bit_identical(
        self, policy, tiny_cfg, small_trace, faulty_sim
    ):
        cfg = tiny_cfg.replace(gc_policy=policy)
        serial = run_trace("across", small_trace, cfg, faulty_sim)
        spec = RunSpec.make("across", small_trace, cfg, faulty_sim)
        pooled = execute_runs([spec], jobs=4).reports[0]
        assert report_digest(serial) == report_digest(pooled)

    def test_policies_produce_distinct_behaviour(
        self, tiny_cfg, small_trace, faulty_sim
    ):
        """Sanity that the zoo is actually plugged in: the preemptive
        policy must diverge from greedy in its flash-op pattern (if it
        didn't, the digest equality above would be vacuous)."""
        greedy = run_trace(
            "across", small_trace,
            tiny_cfg.replace(gc_policy="greedy"), faulty_sim,
        )
        preempt = run_trace(
            "across", small_trace,
            tiny_cfg.replace(gc_policy="preemptive"), faulty_sim,
        )
        assert report_digest(greedy) != report_digest(preempt)
        assert preempt.counters.gc_slices > 0


class TestGreedyBaselineIdentity:
    """The refactored collector must reproduce the pre-refactor engine
    bit for bit under the default greedy policy: every bench-gate
    scenario digest must equal the committed baseline's."""

    @pytest.mark.parametrize(
        "scenario", scenarios(), ids=lambda s: s.name
    )
    def test_scenario_digest_matches_committed_baseline(self, scenario):
        baseline = {
            s["name"]: s["digest"]
            for s in json.loads(BASELINE.read_text())["scenarios"]
        }
        assert scenario.name in baseline
        got = report_digest(scenario.run())
        assert got == baseline[scenario.name], (
            f"{scenario.name}: digest drifted from the pre-refactor "
            f"baseline under the default greedy policy"
        )
