"""Corner cases shared by the hybrid log-block schemes (BAST/FAST)."""

import pytest

from repro.config import SimConfig
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.sim.engine import Simulator
from repro.traces.model import OP_READ, OP_TRIM, OP_WRITE
from conftest import build_ftl


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


@pytest.mark.parametrize("scheme", ["bast", "fast"])
class TestSharedEdges:
    def test_last_logical_block_partial(self, scheme, tiny_cfg):
        """The logical space need not be a whole number of blocks."""
        svc, ftl = build_ftl(scheme, tiny_cfg)
        spp = ftl.spp
        last_lpn = ftl.logical_pages - 1
        ftl.write(last_lpn * spp, spp, 0.0,
                  stamps_for(last_lpn * spp, spp, 7))
        _, found = ftl.read(last_lpn * spp, spp, 0.0)
        assert all(v == 7 for v in found.values())
        ftl.check_invariants()

    def test_trim_then_rewrite_through_merges(self, scheme, tiny_cfg):
        svc, ftl = build_ftl(scheme, tiny_cfg, log_blocks=2)
        spp, ppb = ftl.spp, ftl.ppb
        for i in range(2 * ppb):  # force merges
            ftl.write(((i * 5) % (4 * ppb)) * spp, spp, 0.0,
                      stamps_for(((i * 5) % (4 * ppb)) * spp, spp, i))
        ftl.trim(0, ppb * spp, 0.0)  # whole first logical block
        _, found = ftl.read(0, ppb * spp, 0.0)
        assert found == {}
        ftl.write(0, spp, 1.0, stamps_for(0, spp, 999))
        _, found = ftl.read(0, spp, 2.0)
        assert all(v == 999 for v in found.values())
        ftl.check_invariants()

    def test_engine_run_with_oracle(self, scheme, tiny_cfg):
        import numpy as np

        from repro.traces.model import Trace

        svc = FlashService(tiny_cfg)
        sim = Simulator(
            make_ftl(scheme, svc, log_blocks=4),
            SimConfig(check_oracle=True),
        )
        rng = np.random.default_rng(12)
        n = 250
        trace = Trace(
            "hyb",
            np.sort(rng.uniform(0, 1000, n)),
            rng.choice([OP_WRITE, OP_WRITE, OP_READ, OP_TRIM], n).astype(
                np.uint8
            ),
            (rng.integers(0, 600, n) * 8).astype(np.int64),
            rng.integers(1, 40, n).astype(np.int64),
        )
        rep = sim.run(trace)
        assert rep.requests == n

    def test_aging_through_hybrid(self, scheme, tiny_cfg):
        svc = FlashService(tiny_cfg)
        sim = Simulator(
            make_ftl(scheme, svc, log_blocks=8),
            SimConfig(aged_used=0.4, aged_valid=0.3, aging_style="aligned"),
        )
        sim.age_device()
        assert svc.counters.total_writes == 0  # aging excluded
        assert (svc.timeline.busy_until == 0).all()

    def test_mapping_table_tiny_in_steady_state(self, scheme, tiny_cfg):
        """The hybrids' selling point: once merges fold logs into data
        blocks, the table is far smaller than page-level mapping (only
        the bounded log pool stays page-granular)."""
        svc, ftl = build_ftl(scheme, tiny_cfg, log_blocks=4)
        svc2, page_ftl = build_ftl("ftl", tiny_cfg)
        spp = ftl.spp
        n = 512  # 32 whole logical blocks, written sequentially
        for lpn in range(n):
            ftl.write(lpn * spp, spp, 0.0)
            page_ftl.write(lpn * spp, spp, 0.0)
        # another pass forces the logs through merges
        for lpn in range(0, n, 16):
            ftl.write(lpn * spp, spp, 0.0)
            page_ftl.write(lpn * spp, spp, 0.0)
        assert ftl.mapping_table_bytes() < page_ftl.mapping_table_bytes() / 2
