"""Shared fixtures: tiny devices, small calibrated traces, FTL factories."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    SSDConfig,
    SimConfig,
    SyntheticSpec,
    Trace,
    generate_trace,
    make_ftl,
)
from repro.flash.service import FlashService


@pytest.fixture
def tiny_cfg() -> SSDConfig:
    return SSDConfig.tiny()


@pytest.fixture
def micro_cfg() -> SSDConfig:
    """Very small device: GC kicks in after a few hundred page writes."""
    return SSDConfig(
        channels=2,
        chips_per_channel=1,
        dies_per_chip=1,
        planes_per_die=2,
        blocks_per_plane=16,
        pages_per_block=8,
        page_size_bytes=8 * 1024,
        write_buffer_bytes=0,
    )


@pytest.fixture
def service(tiny_cfg) -> FlashService:
    return FlashService(tiny_cfg)


@pytest.fixture
def micro_service(micro_cfg) -> FlashService:
    return FlashService(micro_cfg)


def build_ftl(scheme: str, cfg: SSDConfig, **kw):
    """Fresh (service, ftl) pair for a scheme."""
    service = FlashService(cfg)
    return service, make_ftl(scheme, service, track_payload=True, **kw)


@pytest.fixture
def small_trace(tiny_cfg) -> Trace:
    spec = SyntheticSpec(
        "small",
        1_500,
        0.6,
        0.25,
        9.0,
        footprint_sectors=int(tiny_cfg.logical_sectors * 0.7),
        seed=11,
    )
    return generate_trace(spec)


@pytest.fixture
def oracle_sim_cfg() -> SimConfig:
    return SimConfig(check_oracle=True)


def random_extents(rng: np.random.Generator, n: int, max_sector: int, spp: int):
    """Random (offset, size) extents mixing aligned, across and large."""
    out = []
    for _ in range(n):
        kind = rng.integers(3)
        if kind == 0:  # across-page
            boundary = int(rng.integers(1, max_sector // spp)) * spp
            left = int(rng.integers(1, spp // 2))
            right = int(rng.integers(1, spp // 2))
            size = min(left + right, spp)
            out.append((boundary - left, size))
        elif kind == 1:  # sub-page
            page = int(rng.integers(max_sector // spp))
            size = int(rng.integers(1, spp))
            rel = int(rng.integers(0, spp - size + 1))
            out.append((page * spp + rel, size))
        else:  # multi-page
            page = int(rng.integers(max_sector // spp - 4))
            size = int(rng.integers(1, 4 * spp))
            out.append((page * spp, max(1, size)))
    return out
