"""Seeded differential fuzzing (repro.check.fuzz)."""

import numpy as np

from repro.check import load_counterexample, random_spec, run_fuzz
from repro.check.differential import DifferentialResult, ReplayFailure
from repro.check.fuzz import with_trims
from repro.traces.model import OP_TRIM, OP_WRITE
from repro.traces.synthetic import VDIWorkloadGenerator


class TestRandomSpec:
    def test_specs_always_validate(self):
        for seed in range(30):
            rng = np.random.default_rng(seed)
            spec = random_spec(rng, footprint_sectors=4096, requests=100)
            spec.validate()  # would raise on an out-of-range knob

    def test_deterministic_per_seed(self):
        a = random_spec(np.random.default_rng(3), footprint_sectors=4096)
        b = random_spec(np.random.default_rng(3), footprint_sectors=4096)
        assert a == b

    def test_generates_trace(self):
        spec = random_spec(
            np.random.default_rng(1), footprint_sectors=4096, requests=64
        )
        trace = VDIWorkloadGenerator(spec).generate()
        assert len(trace) == 64


class TestWithTrims:
    def test_flips_only_writes(self):
        spec = random_spec(
            np.random.default_rng(2), footprint_sectors=4096, requests=200
        )
        trace = VDIWorkloadGenerator(spec).generate()
        rng = np.random.default_rng(9)
        trimmed = with_trims(trace, 0.5, rng)
        flipped = np.nonzero(trimmed.ops != trace.ops)[0]
        assert flipped.size > 0
        assert (trace.ops[flipped] == OP_WRITE).all()
        assert (trimmed.ops[flipped] == OP_TRIM).all()
        # extents untouched
        assert np.array_equal(trimmed.offsets, trace.offsets)
        assert np.array_equal(trimmed.sizes, trace.sizes)

    def test_zero_ratio_is_identity(self):
        spec = random_spec(
            np.random.default_rng(2), footprint_sectors=4096, requests=50
        )
        trace = VDIWorkloadGenerator(spec).generate()
        assert with_trims(trace, 0.0, np.random.default_rng(0)) is trace


class TestRunFuzz:
    def test_clean_campaign(self, tmp_path):
        lines = []
        out = run_fuzz(
            2,
            seed=31,
            requests=200,
            out_dir=tmp_path,
            compare_jobs_case=None,
            log=lines.append,
        )
        assert out.ok
        assert out.cases == 2
        assert out.artifacts == []
        assert len(lines) == 2 and all("ok" in ln for ln in lines)
        assert list(tmp_path.iterdir()) == []

    def test_failing_case_shrunk_and_dumped(self, tmp_path, monkeypatch):
        import repro.check.fuzz as fuzz_mod

        real = fuzz_mod.differential_replay

        def broken(trace, cfg, sim_cfg=None, **kw):
            # synthetic always-on bug, replayed cheaply (one scheme,
            # no cache leg) so the shrinker reduces to one request
            kw["schemes"] = ("ftl",)
            kw["compare_cache"] = False
            res = real(trace, cfg, sim_cfg, **kw)
            res.failures.append(
                ReplayFailure("scheme-divergence", None, "synthetic")
            )
            return res

        monkeypatch.setattr(fuzz_mod, "differential_replay", broken)
        out = run_fuzz(
            1,
            seed=5,
            requests=60,
            out_dir=tmp_path,
            compare_jobs_case=None,
            shrink_budget=40,
        )
        assert not out.ok
        assert len(out.failures) == 1
        idx, result = out.failures[0]
        assert idx == 0 and not result.ok
        assert len(out.artifacts) == 1
        trace, _cfg, sim_cfg, doc = load_counterexample(out.artifacts[0])
        assert len(trace) < 60  # the shrinker made progress
        assert sim_cfg.check.enabled is False  # dumped cfg is the input
        assert doc["failures"][0]["kind"] == "scheme-divergence"
        assert doc["spec"] is not None and doc["seed"] == 5

    def test_aged_cases_alternate(self, monkeypatch):
        import repro.check.fuzz as fuzz_mod

        seen = []

        def record(trace, cfg, sim_cfg=None, **kw):
            seen.append((sim_cfg.aged_used, sim_cfg.aged_valid))
            return DifferentialResult(trace_name=trace.name)

        monkeypatch.setattr(fuzz_mod, "differential_replay", record)
        out = run_fuzz(2, seed=1, requests=40, compare_jobs_case=None)
        assert out.ok
        assert seen[0] == (0.0, 0.0)
        assert seen[1] == (0.55, 0.30)
