"""Counter snapshot series (repro.metrics.series) and engine hookup."""

import numpy as np
import pytest

from repro.config import SimConfig, SSDConfig
from repro.errors import ConfigError
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.metrics.counters import FlashOpCounters, OpKind
from repro.metrics.series import CounterSeries, Snapshot
from repro.sim.engine import Simulator
from repro.traces.synthetic import SyntheticSpec, generate_trace


class TestSeriesMath:
    def _series(self):
        s = CounterSeries()
        c = FlashOpCounters()
        for i in range(1, 6):
            c.count_write(OpKind.DATA, 10)
            if i >= 3:
                c.count_write(OpKind.GC, 5)
                c.count_erase()
            s.append(Snapshot.capture(i * 100, i * 1000.0, c))
        return s

    def test_interval_waf(self):
        s = self._series()
        waf = s.interval_write_amplification()
        assert waf[0] == pytest.approx(1.0)   # no GC yet
        assert waf[2] == pytest.approx(1.5)   # 10 data + 5 gc
        assert len(waf) == 5

    def test_interval_erases(self):
        s = self._series()
        er = s.interval_erases()
        assert list(er) == [0, 0, 1, 1, 1]

    def test_gc_onset(self):
        s = self._series()
        assert s.gc_onset_request() == 300

    def test_no_gc_onset(self):
        s = CounterSeries()
        c = FlashOpCounters()
        c.count_write(OpKind.DATA, 10)
        s.append(Snapshot.capture(10, 1.0, c))
        assert s.gc_onset_request() is None

    def test_summary(self):
        s = self._series()
        summ = s.summary()
        assert summ["snapshots"] == 5
        assert summ["final_erases"] == 3
        assert summ["peak_interval_waf"] == pytest.approx(1.5)

    def test_empty_summary(self):
        assert CounterSeries().summary() == {"snapshots": 0}


class TestEngineHookup:
    def test_snapshots_collected(self):
        cfg = SSDConfig.tiny()
        svc = FlashService(cfg)
        sim = Simulator(
            make_ftl("ftl", svc), SimConfig(snapshot_every=50)
        )
        spec = SyntheticSpec(
            "series",
            400,
            0.7,
            0.2,
            8.0,
            footprint_sectors=int(cfg.logical_sectors * 0.5),
            seed=3,
        )
        rep = sim.run(generate_trace(spec))
        assert sim.series is not None
        # 400/50 periodic + 1 final
        assert len(sim.series) == 9
        assert rep.extra["series_snapshots"] == 9
        waf = sim.series.interval_write_amplification()
        assert np.nanmin(waf) >= 1.0 - 1e-9

    def test_off_by_default(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("ftl", svc))
        assert sim.series is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            SimConfig(snapshot_every=-1).validate()
