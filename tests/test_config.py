"""Configuration validation and paper presets (Table 1)."""

import pytest

from repro.config import SCHEMES, SimConfig, SSDConfig, TimingConfig
from repro.errors import ConfigError


class TestTable1Preset:
    """The exact settings of paper Table 1."""

    def test_block_number(self):
        assert SSDConfig.paper_table1().num_blocks == 262_144

    def test_pages_per_block(self):
        assert SSDConfig.paper_table1().pages_per_block == 64

    def test_page_size(self):
        assert SSDConfig.paper_table1().page_size_bytes == 8 * 1024

    def test_gc_threshold(self):
        assert SSDConfig.paper_table1().gc_threshold == pytest.approx(0.10)

    def test_read_time(self):
        assert SSDConfig.paper_table1().timing.read_ms == pytest.approx(0.075)

    def test_write_time(self):
        assert SSDConfig.paper_table1().timing.program_ms == pytest.approx(2.0)

    def test_cache_access(self):
        assert SSDConfig.paper_table1().timing.cache_access_ms == pytest.approx(
            0.001
        )

    def test_capacity_128gib(self):
        assert SSDConfig.paper_table1().physical_bytes == 128 * 1024**3


class TestDerivedGeometry:
    def test_counts_consistent(self):
        cfg = SSDConfig.tiny()
        assert cfg.num_planes == (
            cfg.channels
            * cfg.chips_per_channel
            * cfg.dies_per_chip
            * cfg.planes_per_die
        )
        assert cfg.num_pages == cfg.num_blocks * cfg.pages_per_block
        assert cfg.logical_pages < cfg.num_pages

    def test_logical_space_respects_op(self):
        cfg = SSDConfig.tiny()
        assert cfg.logical_pages == int(cfg.num_pages * (1 - cfg.op_ratio))

    def test_sectors_per_page(self):
        assert SSDConfig.tiny().sectors_per_page == 16


class TestValidation:
    def test_bad_channel_count(self):
        with pytest.raises(ConfigError):
            SSDConfig(channels=0).validate()

    def test_bad_page_size(self):
        with pytest.raises(ConfigError):
            SSDConfig(page_size_bytes=1000).validate()

    def test_bad_gc_threshold(self):
        with pytest.raises(ConfigError):
            SSDConfig(gc_threshold=1.5).validate()

    def test_gc_restore_below_threshold(self):
        with pytest.raises(ConfigError):
            SSDConfig(gc_threshold=0.2, gc_restore=0.1).validate()

    def test_bad_op_ratio(self):
        with pytest.raises(ConfigError):
            SSDConfig(op_ratio=0.0).validate()

    def test_bad_timing(self):
        with pytest.raises(ConfigError):
            TimingConfig(read_ms=0.0).validate()

    def test_negative_map_lookup(self):
        with pytest.raises(ConfigError):
            TimingConfig(map_lookup_ms=-1).validate()

    def test_replace_validates(self):
        with pytest.raises(ConfigError):
            SSDConfig.tiny().replace(channels=-1)

    def test_replace_applies(self):
        cfg = SSDConfig.tiny().replace(write_buffer_bytes=1024 * 1024)
        assert cfg.write_buffer_bytes == 1024 * 1024


class TestPageSizeSweep:
    def test_capacity_preserved(self):
        base = SSDConfig.tiny()
        for page in (4096, 16384):
            cfg = base.with_page_size(page)
            assert cfg.page_size_bytes == page
            # capacity within one block rounding of the original
            assert abs(cfg.physical_bytes - base.physical_bytes) <= (
                base.physical_bytes * 0.05
            )

    def test_same_size_noop(self):
        cfg = SSDConfig.tiny().with_page_size(8192)
        assert cfg.pages_per_block == SSDConfig.tiny().pages_per_block


class TestSimConfig:
    def test_paper_aging(self):
        sc = SimConfig.paper_aging()
        assert sc.aged_used == pytest.approx(0.90)
        assert sc.aged_valid == pytest.approx(0.398)
        sc.validate()

    def test_bad_aging(self):
        with pytest.raises(ConfigError):
            SimConfig(aged_used=0.5, aged_valid=0.6).validate()

    def test_schemes_constant(self):
        assert SCHEMES == ("ftl", "mrsm", "across")

    def test_qos_streams_valid(self):
        SimConfig(qos_streams=(16, 32, 4096)).validate()
        SimConfig(qos_streams=()).validate()

    @pytest.mark.parametrize("bad", [
        (0,),            # not positive
        (32, 32),        # not strictly increasing
        (64, 16),        # decreasing
        (16.0,),         # not an int
    ])
    def test_qos_streams_invalid(self, bad):
        with pytest.raises(ConfigError):
            SimConfig(qos_streams=bad).validate()

    def test_device_presets(self):
        assert SSDConfig.preset("tiny") == SSDConfig.tiny()
        assert SSDConfig.preset("bench") == SSDConfig.bench_default()
        assert SSDConfig.preset("table1") == SSDConfig.paper_table1()
        with pytest.raises(ConfigError):
            SSDConfig.preset("huge")


def test_summary_mentions_capacity():
    s = SSDConfig.tiny().summary()
    assert "GiB" in s and "blocks/plane" in s
