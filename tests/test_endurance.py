"""Endurance zoo: policy × fault grid, WAF/wear scoring, CLI wiring."""

import pytest

from repro.config import GC_POLICIES, SimConfig
from repro.experiments.endurance import (
    ROW_HEADERS,
    EnduranceCell,
    endurance_specs,
    run_endurance,
)
from repro.experiments.parallel import ResultStore


@pytest.fixture
def aged_sim() -> SimConfig:
    # aged hard enough that replay runs under live GC pressure
    return SimConfig(aged_used=0.90, aged_valid=0.398, seed=5)


class TestSpecs:
    def test_grid_shape(self, tiny_cfg, small_trace, aged_sim):
        specs = endurance_specs(
            small_trace, tiny_cfg, aged_sim,
            policies=("greedy", "preemptive"), fault_levels=(0.0, 1.0),
        )
        assert len(specs) == 4
        assert {s.cfg.gc_policy for s in specs} == {"greedy", "preemptive"}
        # every cell records wear and carries its own fault block
        assert all(s.sim_cfg.record_wear for s in specs)
        levels = [s.sim_cfg.faults.enabled for s in specs]
        assert levels.count(True) == 2  # the two level-1.0 cells

    def test_unknown_policy_rejected(self, tiny_cfg, small_trace, aged_sim):
        with pytest.raises(ValueError):
            endurance_specs(
                small_trace, tiny_cfg, aged_sim, policies=("bogus",)
            )

    def test_distinct_run_keys(self, tiny_cfg, small_trace, aged_sim):
        specs = endurance_specs(
            small_trace, tiny_cfg, aged_sim,
            policies=GC_POLICIES, fault_levels=(1.0,),
        )
        keys = {s.key() for s in specs}
        assert len(keys) == len(GC_POLICIES)


class TestRun:
    def test_scores_and_extras(self, tiny_cfg, small_trace, aged_sim):
        res = run_endurance(
            small_trace, tiny_cfg, aged_sim,
            scheme="across",
            policies=("greedy", "preemptive"),
            fault_levels=(1.0,),
        )
        assert len(res.cells) == 2
        for cell in res.cells:
            assert isinstance(cell, EnduranceCell)
            # flash always writes at least what the host wrote
            assert cell.waf >= 1.0
            assert cell.total_erases > 0
            assert cell.wear_gini >= 0.0
            assert cell.p99_write_ms > 0.0
            assert "wear_mean" in cell.report.extra
            row = cell.row()
            assert len(row) == len(ROW_HEADERS)
        rows = res.rows()
        assert set(rows) == {"greedy x1", "preemptive x1"}

    def test_store_round_trip(self, tiny_cfg, small_trace, aged_sim,
                              tmp_path):
        store = ResultStore(tmp_path / "store")
        kw = dict(
            scheme="ftl", policies=("greedy",), fault_levels=(0.5,),
        )
        first = run_endurance(
            small_trace, tiny_cfg, aged_sim, store=store, **kw
        )
        again = run_endurance(
            small_trace, tiny_cfg, aged_sim, store=store, **kw
        )
        assert store.hits >= 1
        a, b = first.cells[0], again.cells[0]
        # wear extras survive the JSON round trip through the store
        assert a.report.extra["wear_gini"] == b.report.extra["wear_gini"]
        assert a.waf == b.waf


class TestCli:
    def test_endure_smoke(self, capsys):
        from repro.cli import main

        rc = main([
            "endure", "--scale", "0.002",
            "--gc-policies", "greedy,preemptive",
            "--levels", "0", "1",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "endurance zoo" in out
        assert "greedy x0" in out and "preemptive x1" in out

    def test_endure_rejects_unknown_policy(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["endure", "--gc-policies", "bogus", "--scale", "0.002"])
