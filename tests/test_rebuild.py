"""Power-loss recovery: mapping tables rebuilt from flash OOB records."""

import numpy as np
import pytest

from conftest import build_ftl


def stamps_for(offset, size, v):
    return {s: v for s in range(offset, offset + size)}


def random_workload(ftl, n=300, seed=5):
    rng = np.random.default_rng(seed)
    spp = ftl.spp
    max_page = min(400, ftl.logical_pages - 4)
    versions = {}
    v = 0
    for _ in range(n):
        kind = rng.integers(3)
        if kind == 0:
            b = int(rng.integers(1, max_page)) * spp
            off = b - int(rng.integers(1, spp // 2))
            size = min((b - off) + int(rng.integers(1, spp // 2)), spp)
        elif kind == 1:
            p = int(rng.integers(max_page))
            size = int(rng.integers(1, spp))
            off = p * spp + int(rng.integers(0, spp - size + 1))
        else:
            p = int(rng.integers(max_page - 3))
            off, size = p * spp, int(rng.integers(1, 3 * spp))
        v += 1
        st = stamps_for(off, size, v)
        versions.update(st)
        ftl.write(off, size, 0.0, st)
    return versions


def snapshot(ftl):
    state = {
        "pmt": ftl.pmt.copy(),
        "pmt_mask": ftl.pmt_mask.copy(),
        "map_ppn": dict(ftl._map_ppn),
    }
    if hasattr(ftl, "aidx_of_lpn"):
        state["aidx"] = dict(ftl.aidx_of_lpn)
        state["areas"] = {
            e.aidx: (e.lpn0, e.start, e.size, e.appn)
            for e in ftl.amt.entries()
        }
    if hasattr(ftl, "region_map"):
        state["region_map"] = dict(ftl.region_map)
        state["region_mask"] = dict(ftl.region_mask)
    return state


def wipe(ftl):
    ftl.pmt.fill(-1)
    ftl.pmt_mask.fill(0)
    ftl._map_ppn.clear()
    if hasattr(ftl, "aidx_of_lpn"):
        ftl.amt.clear()
        ftl.aidx_of_lpn.clear()
    if hasattr(ftl, "region_map"):
        ftl.region_map.clear()
        ftl.region_mask.clear()


@pytest.mark.parametrize("scheme", ["ftl", "across", "mrsm"])
class TestRebuild:
    def test_tables_match_after_rebuild(self, scheme, tiny_cfg):
        svc, ftl = build_ftl(scheme, tiny_cfg)
        random_workload(ftl)
        before = snapshot(ftl)
        wipe(ftl)
        scanned = ftl.rebuild_from_flash()
        assert scanned == svc.array.total_valid_pages
        after = snapshot(ftl)
        assert np.array_equal(before["pmt"], after["pmt"])
        assert np.array_equal(before["pmt_mask"], after["pmt_mask"])
        assert before["map_ppn"] == after["map_ppn"]
        if "areas" in before:
            assert before["areas"] == after["areas"]
            assert before["aidx"] == after["aidx"]
        if "region_map" in before:
            assert before["region_map"] == after["region_map"]
            assert before["region_mask"] == after["region_mask"]

    def test_data_readable_after_rebuild(self, scheme, tiny_cfg):
        svc, ftl = build_ftl(scheme, tiny_cfg)
        versions = random_workload(ftl, n=200, seed=9)
        wipe(ftl)
        ftl.rebuild_from_flash()
        ftl.check_invariants()
        for sec, v in list(versions.items())[::5]:
            _, found = ftl.read(sec, 1, 0.0)
            assert found.get(sec) == v, sec

    def test_rebuild_after_gc(self, scheme, micro_cfg):
        svc, ftl = build_ftl(scheme, micro_cfg)
        spp = ftl.spp
        hot = max(4, ftl.logical_pages // 8)
        for i in range(2 * svc.geom.num_pages):
            lpn = i % hot
            ftl.write(lpn * spp, spp, 0.0,
                      stamps_for(lpn * spp, spp, i))
        assert svc.counters.erases > 0
        before = snapshot(ftl)
        wipe(ftl)
        ftl.rebuild_from_flash()
        after = snapshot(ftl)
        assert np.array_equal(before["pmt"], after["pmt"])
        ftl.check_invariants()

    def test_writes_continue_after_rebuild(self, scheme, tiny_cfg):
        svc, ftl = build_ftl(scheme, tiny_cfg)
        random_workload(ftl, n=150, seed=2)
        wipe(ftl)
        ftl.rebuild_from_flash()
        ftl.write(2056, 12, 0.0, stamps_for(2056, 12, 999))
        _, found = ftl.read(2056, 12, 0.0)
        assert all(v == 999 for v in found.values())
        ftl.check_invariants()


class TestRebuildEdgeCases:
    def test_empty_device(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg)
        assert ftl.rebuild_from_flash() == 0

    def test_amt_indices_preserved_and_free_list_rebuilt(self, tiny_cfg):
        svc, ftl = build_ftl("across", tiny_cfg)
        # create three areas, roll one back (freeing its index)
        ftl.write(2056, 12, 0.0)
        ftl.write(4104, 12, 0.0)
        ftl.write(6152, 12, 0.0)
        ftl.write(4100, 16, 0.0)  # rollback of the middle area
        live_before = {e.aidx for e in ftl.amt.entries()}
        wipe(ftl)
        ftl.rebuild_from_flash()
        assert {e.aidx for e in ftl.amt.entries()} == live_before
        # the freed index is reusable again
        ftl.write(4104, 12, 0.0)
        ftl.check_invariants()
