"""Device aging styles (paper §4.1 pre-conditioning)."""

import pytest

from repro.config import SimConfig, SSDConfig
from repro.errors import ConfigError
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.metrics.counters import OpKind
from repro.sim.engine import Simulator


def aged_sim(scheme, style, cfg=None, used=0.5, valid=0.3):
    cfg = cfg or SSDConfig.tiny()
    svc = FlashService(cfg)
    ftl = make_ftl(scheme, svc)
    sim = Simulator(
        ftl,
        SimConfig(aged_used=used, aged_valid=valid, aging_style=style),
    )
    sim.age_device()
    return svc, ftl, sim


class TestVdiAging:
    def test_reaches_used_target(self):
        svc, ftl, sim = aged_sim("ftl", "vdi")
        assert svc.counters.writes[OpKind.AGING] >= int(
            0.5 * svc.geom.num_pages
        )

    def test_measured_counters_clean(self):
        svc, ftl, sim = aged_sim("across", "vdi")
        c = svc.counters
        assert c.total_writes == 0
        assert c.total_reads == 0
        assert c.erases == 0
        assert c.update_reads == 0

    def test_across_stats_clean_after_aging(self):
        svc, ftl, sim = aged_sim("across", "vdi")
        st = ftl.across_stats
        assert st.direct_writes == 0
        assert st.unprofitable_amerge == 0
        assert st.rollbacks == 0
        assert st.areas_created == 0
        # ... even though the AMT itself may hold warm-up areas
        assert ftl.amt.total_created >= len(ftl.amt)

    def test_mrsm_tables_fragmented_by_vdi_aging(self):
        _, aligned_ftl, _ = aged_sim("mrsm", "aligned")
        _, vdi_ftl, _ = aged_sim("mrsm", "vdi")
        # aligned full-page aging leaves coarse entries; VDI aging's
        # sub-page writes fragment the table (the paper's warm-up trace
        # effect behind Fig. 12a)
        assert not aligned_ftl._ever_fragmented
        assert len(vdi_ftl._ever_fragmented) > 0

    def test_chips_idle_after_vdi_aging(self):
        svc, ftl, sim = aged_sim("ftl", "vdi")
        assert (svc.timeline.busy_until == 0).all()

    def test_oracle_clean_run_after_vdi_aging(self):
        cfg = SSDConfig.tiny()
        svc = FlashService(cfg)
        ftl = make_ftl("across", svc)
        sim = Simulator(
            ftl,
            SimConfig(
                aged_used=0.5,
                aged_valid=0.3,
                aging_style="vdi",
                check_oracle=True,
            ),
        )
        sim.age_device()
        from repro.traces.model import OP_READ, OP_WRITE

        # overwrite aged data and read it back: only fresh stamps count
        sim.process(OP_WRITE, 2056, 12, 0.0)
        sim.process(OP_READ, 2048, 32, 1.0)
        assert sim.oracle.reads_verified == 1


class TestAgeWithTrace:
    def test_user_trace_warmup(self):
        import numpy as np

        from repro.traces.model import OP_READ, OP_WRITE, Trace

        cfg = SSDConfig.tiny()
        svc = FlashService(cfg)
        ftl = make_ftl("across", svc)
        sim = Simulator(ftl)
        n = 300
        rng = np.random.default_rng(2)
        warm = Trace(
            "warm",
            np.arange(n, dtype=float),
            np.where(rng.random(n) < 0.7, OP_WRITE, OP_READ).astype(np.uint8),
            (rng.integers(0, 400, n) * 16).astype(np.int64),
            rng.integers(1, 32, n).astype(np.int64),
        )
        sim.age_with_trace(warm)
        c = svc.counters
        assert c.writes[OpKind.AGING] > 0
        assert c.total_writes == 0  # warm-up excluded from measurement
        assert (svc.timeline.busy_until == 0).all()
        # a second call is a no-op (already aged)
        before = c.writes[OpKind.AGING]
        sim.age_with_trace(warm)
        assert c.writes[OpKind.AGING] == before


class TestStyleValidation:
    def test_bad_style_rejected(self):
        with pytest.raises(ConfigError):
            SimConfig(aging_style="bogus").validate()

    def test_aligned_still_exact(self):
        svc, ftl, sim = aged_sim("ftl", "aligned", used=0.4, valid=0.25)
        valid_frac = svc.array.total_valid_pages / svc.geom.num_pages
        assert valid_frac == pytest.approx(0.25, abs=0.03)
