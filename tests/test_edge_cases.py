"""Grab-bag of edge cases across modules: empty inputs, boundary
values, degenerate configurations."""


from repro.config import SimConfig, SSDConfig
from repro.experiments.charts import _nice_max, grouped_bar_svg, table_html
from repro.experiments.sweeps import SweepResult
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.metrics.latency import LatencyRecorder
from repro.sim.engine import Simulator
from repro.traces.model import OP_READ, OP_WRITE, Trace
from conftest import build_ftl


class TestChartsEdges:
    def test_nice_max_handles_zero_and_inf(self):
        assert _nice_max([]) == 1.0
        assert _nice_max([0.0]) == 0.5
        assert _nice_max([float("inf"), 0.4]) == 0.5
        assert _nice_max([12_345.0]) == 20_000

    def test_infinite_value_skipped_in_bars_but_shown_in_table(self):
        svg = grouped_bar_svg(["a"], {"ftl": [float("inf")]})
        assert "<path" not in svg.split("</svg>")[0].split("line")[0] or True
        table = table_html(["a"], {"ftl": [float("inf")]})
        assert "—" in table

    def test_empty_sweep_renders(self):
        res = SweepResult("x", [], "m", {})
        assert "sweep of x" in res.rendered()


class TestEngineEdges:
    def test_zero_length_trace(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("ftl", svc))
        rep = sim.run(Trace.from_lists("empty", []))
        assert rep.requests == 0
        assert rep.total_io_ms == 0.0

    def test_latency_sampling_disabled_still_reports_totals(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(
            make_ftl("ftl", svc), SimConfig(record_latencies=False)
        )
        sim.process(OP_WRITE, 0, 16, 0.0)
        sim.process(OP_READ, 0, 16, 5.0)
        assert sim.recorder.total_ms > 0
        assert sim.recorder.summary(sim.recorder.WRITE_NORMAL).count == 0

    def test_request_at_logical_space_edge(self):
        svc = FlashService(SSDConfig.tiny())
        sim = Simulator(make_ftl("across", svc))
        limit = sim.ftl.logical_pages * sim.spp
        sim.process(OP_WRITE, limit - 16, 16, 0.0)  # last full page
        sim.process(OP_WRITE, limit - 8, 8, 1.0)    # last half page
        lat = sim.process(OP_READ, limit - 16, 16, 2.0)
        assert lat > 0

    def test_across_request_at_last_boundary(self):
        svc = FlashService(SSDConfig.tiny())
        ftl = make_ftl("across", svc, track_payload=True)
        limit = ftl.logical_pages * ftl.spp
        boundary = limit - ftl.spp
        ftl.write(boundary - 4, 8, 0.0, {s: 5 for s in range(boundary - 4, boundary + 4)})
        assert len(ftl.amt) == 1
        _, found = ftl.read(boundary - 4, 8, 1.0)
        assert len(found) == 8
        ftl.check_invariants()


class TestSchemeEdges:
    def test_one_sector_writes_everywhere(self, tiny_cfg):
        for scheme in ("ftl", "mrsm", "across", "bast"):
            svc, ftl = build_ftl(scheme, tiny_cfg)
            for sec in (0, 15, 16, 17, 160):
                ftl.write(sec, 1, 0.0, {sec: sec})
            for sec in (0, 15, 16, 17, 160):
                _, found = ftl.read(sec, 1, 0.0)
                assert found.get(sec) == sec, (scheme, sec)

    def test_interleaved_trim_write_read(self, tiny_cfg):
        for scheme in ("ftl", "mrsm", "across"):
            svc, ftl = build_ftl(scheme, tiny_cfg)
            ftl.write(100, 20, 0.0, {s: 1 for s in range(100, 120)})
            ftl.trim(104, 4, 1.0)
            ftl.write(106, 2, 2.0, {s: 2 for s in range(106, 108)})
            _, found = ftl.read(100, 20, 3.0)
            assert found.get(100) == 1, scheme
            assert 104 not in found and 105 not in found, scheme
            assert found.get(106) == 2 and found.get(107) == 2, scheme
            assert found.get(110) == 1, scheme

    def test_write_entire_logical_space_once(self, micro_cfg):
        svc, ftl = build_ftl("ftl", micro_cfg)
        spp = ftl.spp
        for lpn in range(ftl.logical_pages):
            ftl.write(lpn * spp, spp, 0.0)
        assert svc.array.total_valid_pages == ftl.logical_pages
        ftl.check_invariants()


class TestLatencyRecorderEdges:
    def test_empty_percentiles(self):
        r = LatencyRecorder()
        s = r.summary(r.READ_ACROSS)
        assert s.count == 0 and s.p99_ms == 0.0

    def test_zero_sector_guard(self):
        r = LatencyRecorder()
        r.record(True, False, 1.0, 0)
        assert r.summary(r.WRITE_NORMAL).per_sector_ms == 0.0
