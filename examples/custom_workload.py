#!/usr/bin/env python
"""Declarative workloads: describe traffic as JSON, compare schemes.

Two sample specs ship in ``examples/workloads/`` — a mail server
(hotspot 4-8 KiB writes + journal-tail boundary writes) and a build
server (large sequential writes, small unaligned metadata, TRIMs).
Describe your own workload the same way and see how much re-aligning
across-page requests would buy it.

Run:  python examples/custom_workload.py [spec.json ...]
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from repro import (
    SCHEMES,
    SimConfig,
    SSDConfig,
    WorkloadSpec,
    characterize,
    compile_workload,
    normalize,
    render_table,
    run_trace,
)

DEFAULT_SPECS = sorted((Path(__file__).parent / "workloads").glob("*.json"))


def study(spec_path: Path, cfg, sim_cfg) -> float:
    spec = WorkloadSpec.from_json(spec_path.read_text())
    trace = compile_workload(spec, int(cfg.logical_sectors * 0.8))
    st = characterize(trace, cfg.page_size_bytes)
    print(
        f"\n=== {spec.name} ({spec_path.name}): {st.requests} requests, "
        f"write {st.write_ratio:.0%}, across {st.across_ratio:.1%}, "
        f"unaligned {st.unaligned_ratio:.1%} ==="
    )
    reports = {s: run_trace(s, trace, cfg, sim_cfg) for s in SCHEMES}
    io = normalize({s: r.total_io_ms for s, r in reports.items()})
    er = normalize(
        {s: float(max(1, r.erase_count)) for s, r in reports.items()}
    )
    rows = {
        s: [
            reports[s].mean_read_ms,
            reports[s].mean_write_ms,
            io[s],
            er[s],
        ]
        for s in SCHEMES
    }
    print(render_table(
        "scheme comparison (io/erases normalised to FTL)",
        ["read ms", "write ms", "norm io", "norm erases"],
        rows,
    ))
    return 1 - io["across"]


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("specs", nargs="*", type=Path,
                    help="workload spec JSON files")
    ap.add_argument("--requests", type=int,
                    help="override each spec's request count")
    args = ap.parse_args()

    cfg = SSDConfig.bench_default()
    sim_cfg = SimConfig(aged_used=0.9, aged_valid=0.398, aging_style="vdi")
    print(cfg.summary())

    paths = args.specs or DEFAULT_SPECS
    gains = {}
    for path in paths:
        if args.requests:
            doc = json.loads(path.read_text())
            doc["requests"] = args.requests
            tmp = path.parent / f".tmp_{path.name}"
            tmp.write_text(json.dumps(doc))
            try:
                gains[path.stem] = study(tmp, cfg, sim_cfg)
            finally:
                tmp.unlink()
        else:
            gains[path.stem] = study(path, cfg, sim_cfg)

    print("\nAcross-FTL overall I/O-time reduction per workload:")
    for name, g in gains.items():
        print(f"  {name:15s} {g:+.1%}")
    print(
        "\nWorkloads with more boundary-straddling writes benefit more — "
        "the across-page ratio is the predictor (paper §4.3)."
    )


if __name__ == "__main__":
    main()
