#!/usr/bin/env python
"""GC-policy and wear study (library extension beyond the paper).

The paper evaluates with SSDsim's greedy garbage collection.  This
example compares greedy, cost-benefit and wear-aware victim selection
under the same hot/cold VDI workload, reporting erase counts, write
amplification and wear evenness — and shows Across-FTL keeps its
advantage under every policy.

Run:  python examples/gc_policy_study.py [--requests N]
"""

from __future__ import annotations

import argparse

from repro import (
    GC_POLICIES,
    SimConfig,
    SSDConfig,
    SyntheticSpec,
    generate_trace,
    render_table,
    run_trace,
    wear_stats,
)
from repro.flash.service import FlashService
from repro.ftl import make_ftl
from repro.sim.engine import Simulator


def run_policy(policy, trace, base_cfg, sim_cfg, scheme):
    cfg = base_cfg.replace(gc_policy=policy)
    service = FlashService(cfg)
    ftl = make_ftl(scheme, service)
    sim = Simulator(ftl, sim_cfg)
    report = sim.run(trace)
    return report, wear_stats(service.array)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--requests", type=int, default=15_000)
    args = ap.parse_args()

    cfg = SSDConfig.bench_default()
    sim_cfg = SimConfig(aged_used=0.9, aged_valid=0.398)
    spec = SyntheticSpec(
        name="gcstudy",
        requests=args.requests,
        write_ratio=0.65,
        across_ratio=0.24,
        mean_write_kb=9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.8),
        seed=99,
        hot_zones=32,
        zipf_s=1.3,  # strongly skewed: hot/cold separation favours
                     # age- and wear-aware policies
    )
    trace = generate_trace(spec)

    rows = {}
    ratios = {}
    for policy in GC_POLICIES:
        ftl_rep, ftl_wear = run_policy(policy, trace, cfg, sim_cfg, "ftl")
        acr_rep, acr_wear = run_policy(policy, trace, cfg, sim_cfg, "across")
        wa = ftl_rep.counters.total_writes / max(1, ftl_rep.counters.data_writes)
        rows[policy] = [
            ftl_rep.erase_count,
            acr_rep.erase_count,
            wa,
            ftl_wear.gini,
            acr_wear.gini,
        ]
        ratios[policy] = acr_rep.erase_count / max(1, ftl_rep.erase_count)

    print(cfg.summary())
    print()
    print(render_table(
        "GC policy comparison (baseline FTL and Across-FTL)",
        ["ftl erases", "across erases", "ftl WA", "ftl wear gini",
         "across wear gini"],
        rows,
    ))
    print("\nAcross-FTL erase ratio vs the baseline, per policy:")
    for policy, r in ratios.items():
        print(f"  {policy:13s} {r:.3f}")
    print(
        "\nThe re-alignment saving is orthogonal to the GC policy: "
        "Across-FTL erases less under all three."
    )


if __name__ == "__main__":
    main()
