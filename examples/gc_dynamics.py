#!/usr/bin/env python
"""GC dynamics over time: write amplification and erase pulses.

Uses the engine's periodic counter snapshots to show how a nearly-full
device transitions into steady-state garbage collection — the knee in
interval write amplification, the erase pulse train — and how much
later (and gentler) that knee is under Across-FTL on an across-heavy
workload.

Run:  python examples/gc_dynamics.py [--requests N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    SimConfig,
    SSDConfig,
    Simulator,
    SyntheticSpec,
    generate_trace,
    make_ftl,
    render_table,
)
from repro.flash.service import FlashService


def run(scheme, trace, cfg, snapshot_every):
    service = FlashService(cfg)
    ftl = make_ftl(scheme, service)
    sim = Simulator(
        ftl,
        # start at 80% used (below the GC trigger) so the run itself
        # drives the device into steady-state collection
        SimConfig(
            aged_used=0.80, aged_valid=0.45, snapshot_every=snapshot_every
        ),
    )
    sim.run(trace)
    return sim.series


def sparkline(values, width=48) -> str:
    """Console sparkline (block characters) of a series."""
    marks = " .:-=+*#%@"
    vals = np.asarray(values, dtype=float)
    vals = vals[~np.isnan(vals)]
    if len(vals) == 0:
        return ""
    if len(vals) > width:
        idx = np.linspace(0, len(vals) - 1, width).astype(int)
        vals = vals[idx]
    lo, hi = float(vals.min()), float(vals.max())
    span = (hi - lo) or 1.0
    return "".join(
        marks[int((v - lo) / span * (len(marks) - 1))] for v in vals
    )


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--requests", type=int, default=25_000)
    args = ap.parse_args()

    cfg = SSDConfig.bench_default()
    spec = SyntheticSpec(
        name="gcdyn",
        requests=args.requests,
        write_ratio=0.85,          # write-heavy to reach GC quickly
        across_ratio=0.25,
        mean_write_kb=9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.85),
        seed=31,
    )
    trace = generate_trace(spec)
    every = max(200, args.requests // 60)

    print(cfg.summary())
    rows = {}
    series = {}
    for scheme in ("ftl", "across"):
        s = run(scheme, trace, cfg, every)
        series[scheme] = s
        summ = s.summary()
        rows[scheme] = [
            summ["gc_onset_request"] or "-",
            summ["final_erases"],
            summ["mean_interval_waf"],
            summ["peak_interval_waf"],
        ]
    print()
    print(render_table(
        "GC dynamics from 80% used (write-heavy, 25% across)",
        ["GC onset (req#)", "erases", "mean WAF", "peak WAF"],
        rows,
    ))
    print("\ninterval write amplification over the run:")
    for scheme, s in series.items():
        print(f"  {scheme:7s} |{sparkline(s.interval_write_amplification())}|")
    print("erase pulses over the run:")
    for scheme, s in series.items():
        print(f"  {scheme:7s} |{sparkline(s.interval_erases())}|")
    f, a = series["ftl"].summary(), series["across"].summary()
    if f["gc_onset_request"] and a["gc_onset_request"]:
        delay = a["gc_onset_request"] / f["gc_onset_request"] - 1
        print(
            f"\nAcross-FTL postponed GC onset by {delay:+.0%} and finished "
            f"with {1 - a['final_erases'] / max(1, f['final_erases']):.0%} "
            "fewer erases — fewer programs per across-page request means "
            "the free-block pool drains slower (paper Figs. 10/11)."
        )


if __name__ == "__main__":
    main()
