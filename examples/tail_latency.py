#!/usr/bin/env python
"""Tail-latency analysis with the per-request event log.

The paper reports mean response times (Fig. 9); this example goes
deeper: per-class percentiles (the Fig. 4 motivation, at p50/p95/p99),
the long-tail ratio GC pressure creates, and latency over time through
burst periods — for the baseline FTL and Across-FTL side by side.

Run:  python examples/tail_latency.py [--requests N]
"""

from __future__ import annotations

import argparse

from repro import (
    OP_WRITE,
    SimConfig,
    SSDConfig,
    SyntheticSpec,
    generate_trace,
    make_ftl,
    render_table,
    Simulator,
)
from repro.flash.service import FlashService


def run(scheme, trace, cfg, sim_cfg):
    service = FlashService(cfg)
    ftl = make_ftl(scheme, service)
    sim = Simulator(ftl, sim_cfg)
    sim.run(trace)
    return sim.request_log


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--requests", type=int, default=12_000)
    args = ap.parse_args()

    cfg = SSDConfig.bench_default()
    sim_cfg = SimConfig(
        aged_used=0.9, aged_valid=0.398, record_requests=True
    )
    spec = SyntheticSpec(
        name="tail",
        requests=args.requests,
        write_ratio=0.6,
        across_ratio=0.25,
        mean_write_kb=9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.8),
        seed=21,
    )
    trace = generate_trace(spec)

    logs = {s: run(s, trace, cfg, sim_cfg) for s in ("ftl", "across")}

    rows = {}
    for scheme, log in logs.items():
        rows[scheme] = [
            log.percentile(50, op=OP_WRITE),
            log.percentile(95, op=OP_WRITE),
            log.percentile(99, op=OP_WRITE),
            log.tail_ratio(99),
        ]
    print(cfg.summary())
    print()
    print(render_table(
        "write latency percentiles (ms) and p99/p50 tail ratio",
        ["p50", "p95", "p99", "tail"],
        rows,
    ))

    rows = {}
    for scheme, log in logs.items():
        rows[scheme] = [
            log.percentile(99, op=OP_WRITE, across=True),
            log.percentile(99, op=OP_WRITE, across=False),
            log.percentile(99, op=0, across=True),
            log.percentile(99, op=0, across=False),
        ]
    print()
    print(render_table(
        "p99 by request class (the Fig. 4 split, at the tail)",
        ["write across", "write normal", "read across", "read normal"],
        rows,
    ))

    ftl_starts, ftl_means = logs["ftl"].latency_series(bucket_ms=2000.0)
    acr_starts, acr_means = logs["across"].latency_series(bucket_ms=2000.0)
    worst = ftl_means.argmax()
    print(
        f"\nworst 2s window under the baseline: mean latency "
        f"{ftl_means[worst]:.2f} ms at t={ftl_starts[worst] / 1000:.1f}s; "
        f"Across-FTL over the same horizon peaks at {acr_means.max():.2f} ms"
    )
    print(
        "Re-aligning across-page writes trims the burst-drain queues, "
        "which is where the paper's mean-latency gains concentrate."
    )


if __name__ == "__main__":
    main()
