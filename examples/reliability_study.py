#!/usr/bin/env python
"""Reliability under media faults: retries, bad blocks, data integrity.

Three experiments on one aged device (see ``docs/reliability.md`` for
the model behind them):

1. **Latency vs wear** — sweep fault intensity on the stress preset and
   watch read latency climb as raw bit errors push reads into the
   retry table.
2. **Graceful degradation** — crank erase failures so blocks retire
   mid-run, and confirm the device keeps serving I/O with shrunken
   over-provisioning instead of dying on a protocol error.
3. **Data integrity across retirement** — run with the sector oracle
   on, so every read is verified against a model of what the data must
   be; relocations caused by bad-block retirement (including
   across-page areas) must leave every byte intact.

Run:  python examples/reliability_study.py [--scale 0.01]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro import (
    FaultConfig,
    SimConfig,
    SSDConfig,
    generate_trace,
    render_table,
    run_trace,
    SyntheticSpec,
)


def make_trace(cfg: SSDConfig, scale: float):
    spec = SyntheticSpec(
        name="reliability",
        requests=max(2_000, int(600_000 * scale)),
        write_ratio=0.65,
        across_ratio=0.25,
        mean_write_kb=9.0,
        footprint_sectors=cfg.logical_sectors // 2,
        seed=11,
    )
    return generate_trace(spec)


def intensity_sweep(cfg, trace, sim_cfg) -> None:
    print("\n=== 1. latency vs fault intensity (across scheme) ===")
    base = FaultConfig.stress()
    rows = {}
    for lvl in (0.0, 0.5, 1.0, 2.0, 4.0):
        rep = run_trace(
            "across", trace, cfg,
            replace(sim_cfg, faults=base.scaled(lvl)),
        )
        c = rep.counters
        rows[f"x{lvl:g}"] = [
            c.read_retries,
            c.uncorrectable_reads,
            c.program_fails + c.erase_fails,
            c.bad_blocks,
            rep.mean_read_ms,
            rep.mean_write_ms,
        ]
    print(render_table(
        "fault intensity (stress preset multiples)",
        ["retries", "uncorr", "pgm+ers fail", "bad blk",
         "read ms", "write ms"],
        rows,
    ))


def degradation(cfg, trace, sim_cfg) -> None:
    print("\n=== 2. graceful degradation under heavy erase failures ===")
    fc = replace(
        FaultConfig.stress(),
        erase_fail_prob=0.25,
        program_fail_prob=2e-2,
    )
    rep = run_trace("across", trace, cfg, replace(sim_cfg, faults=fc))
    c = rep.counters
    print(
        f"served {rep.requests} requests while retiring "
        f"{c.bad_blocks} blocks ({c.erase_fails} erase failures, "
        f"{c.program_fails} program failures, "
        f"{c.fault_relocations} pages relocated off dying blocks)"
    )
    print(
        f"GC pressure feedback: {c.gc_stalls} stalls, "
        f"{rep.erase_count} erases, mean write {rep.mean_write_ms:.3f} ms"
    )


def integrity(cfg, trace, sim_cfg) -> None:
    print("\n=== 3. data integrity across bad-block retirement ===")
    fc = replace(
        FaultConfig.stress(),
        erase_fail_prob=0.25,
        program_fail_prob=2e-2,
    )
    checked = replace(sim_cfg, check_oracle=True, faults=fc)
    for scheme in ("ftl", "across"):
        rep = run_trace(scheme, trace, cfg, checked)
        print(
            f"{scheme:>7}: {rep.extra['oracle_reads_verified']} reads "
            f"verified against the sector oracle with "
            f"{rep.counters.bad_blocks} blocks retired — no mismatch"
        )


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--scale", type=float, default=0.01,
                    help="request-count scale (default 0.01 = 6k requests)")
    args = ap.parse_args()

    cfg = SSDConfig.bench_default()
    trace = make_trace(cfg, args.scale)
    sim_cfg = SimConfig(aged_used=0.9, aged_valid=0.4)
    print(f"device: {cfg.summary()}")
    print(f"trace: {len(trace)} requests, aged 90%/40%")

    intensity_sweep(cfg, trace, sim_cfg)
    degradation(cfg, trace, sim_cfg)
    integrity(cfg, trace, sim_cfg)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
