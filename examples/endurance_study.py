#!/usr/bin/env python
"""Endurance study: erase counts, write amplification and wear as the
across-page share of the workload grows.

The paper argues (Figs. 10/11) that re-aligning across-page requests
cuts flash programs and therefore erase counts — the SSD lifetime
indicator.  This example sweeps the across-page ratio to show where
that saving comes from and how large it can get.

Run:  python examples/endurance_study.py [--requests N]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import (
    SimConfig,
    SSDConfig,
    SyntheticSpec,
    generate_trace,
    render_table,
    run_trace,
)

ACROSS_SWEEP = (0.0, 0.1, 0.2, 0.3)


def wear_summary(report, cfg):
    """Write amplification and erase stats for one run."""
    c = report.counters
    user_writes = c.data_writes
    total = c.total_writes
    wa = total / user_writes if user_writes else 0.0
    return wa, c.erases


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--requests", type=int, default=10_000)
    args = ap.parse_args()

    cfg = SSDConfig.bench_default()
    sim_cfg = SimConfig(aged_used=0.9, aged_valid=0.398)
    rows = {}
    for across in ACROSS_SWEEP:
        spec = SyntheticSpec(
            name=f"across={across:.0%}",
            requests=args.requests,
            write_ratio=0.6,
            across_ratio=across,
            mean_write_kb=9.0,
            footprint_sectors=int(cfg.logical_sectors * 0.8),
            seed=13,
        )
        trace = generate_trace(spec)
        ftl = run_trace("ftl", trace, cfg, sim_cfg)
        acr = run_trace("across", trace, cfg, sim_cfg)
        wa_f, er_f = wear_summary(ftl, cfg)
        wa_a, er_a = wear_summary(acr, cfg)
        saving = 1 - er_a / er_f if er_f else 0.0
        rows[spec.name] = [wa_f, wa_a, er_f, er_a, saving]

    print(cfg.summary())
    print()
    print(render_table(
        "erase savings of Across-FTL vs across-page share of the workload",
        ["WA ftl", "WA across", "erases ftl", "erases across",
         "erase saving"],
        rows,
    ))
    print(
        "\nWith no across-page requests the schemes coincide; the paper's "
        "traces (16%-28% across) sit where the saving reaches the "
        "6.4%-19.1% band reported in Fig. 11."
    )


if __name__ == "__main__":
    main()
