#!/usr/bin/env python
"""Quickstart: simulate one workload under all three FTL schemes.

Builds a small SSD, generates a VDI-like workload with 25% across-page
requests, replays it under the baseline page-mapping FTL, MRSM and
Across-FTL, and prints the comparison the paper's evaluation is built
from (latency, flash operations, erase counts).

Run:  python examples/quickstart.py [--requests N] [--across RATIO]
"""

from __future__ import annotations

import argparse

from repro import (
    SCHEMES,
    SimConfig,
    SSDConfig,
    SyntheticSpec,
    generate_trace,
    normalize,
    render_table,
    run_trace,
)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--requests", type=int, default=12_000)
    ap.add_argument("--across", type=float, default=0.25,
                    help="target across-page request ratio at 8 KiB pages")
    ap.add_argument("--seed", type=int, default=42)
    args = ap.parse_args()

    cfg = SSDConfig.bench_default()
    print(cfg.summary())

    spec = SyntheticSpec(
        name="quickstart",
        requests=args.requests,
        write_ratio=0.6,
        across_ratio=args.across,
        mean_write_kb=9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.8),
        seed=args.seed,
    )
    trace = generate_trace(spec)
    print(f"\nworkload: {len(trace)} requests, "
          f"{trace.write_ratio:.0%} writes, target across ratio "
          f"{args.across:.0%}\n")

    sim_cfg = SimConfig(aged_used=0.9, aged_valid=0.398)
    reports = {s: run_trace(s, trace, cfg, sim_cfg) for s in SCHEMES}

    rows = {}
    for s, r in reports.items():
        rows[s] = [
            r.mean_read_ms,
            r.mean_write_ms,
            r.counters.total_reads,
            r.counters.total_writes,
            r.erase_count,
        ]
    print(render_table(
        "scheme comparison (absolute)",
        ["read ms", "write ms", "flash reads", "flash writes", "erases"],
        rows,
    ))

    norm_io = normalize({s: r.total_io_ms for s, r in reports.items()})
    norm_er = normalize({s: float(r.erase_count) for s, r in reports.items()})
    print("\nnormalised to the baseline FTL:")
    for s in SCHEMES:
        print(f"  {s:7s} I/O time {norm_io[s]:.3f}   erases {norm_er[s]:.3f}")

    a = reports["across"].extra
    print(
        f"\nAcross-FTL activity: {a['across_direct_writes']} direct writes, "
        f"{a['across_profitable_amerge']} profitable + "
        f"{a['across_unprofitable_amerge']} unprofitable AMerges, "
        f"{a['across_rollbacks']} rollbacks, "
        f"{a['across_direct_reads']} direct reads"
    )
    improvement = 1 - norm_io["across"]
    print(f"\nAcross-FTL reduced overall I/O time by {improvement:.1%} "
          f"(paper reports 4.6%-11.6% on the real LUN traces)")


if __name__ == "__main__":
    main()
