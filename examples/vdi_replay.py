#!/usr/bin/env python
"""Replay VDI LUN workloads (real SYSTOR'17 traces or the calibrated
synthetic presets) and reproduce the paper's headline comparison.

This is the workload the paper's introduction motivates: virtual
machines on a host file system lose block-alignment when their I/O is
translated through disk image files, so a large share of requests
become across-page on the SSD.

Run on synthetic presets (no trace files needed):

    python examples/vdi_replay.py --scale 0.02

Replay a real trace file you downloaded from the SYSTOR'17 collection:

    python examples/vdi_replay.py --trace path/to/lun.csv.gz
"""

from __future__ import annotations

import argparse

from repro import (
    SCHEMES,
    SimConfig,
    SSDConfig,
    characterize,
    load_systor,
    lun_traces,
    normalize,
    render_table,
    run_trace,
)


def replay(trace, cfg, sim_cfg):
    stats = characterize(trace, cfg.page_size_bytes)
    print(
        f"\n=== {trace.name}: {stats.requests} requests, "
        f"write ratio {stats.write_ratio:.1%}, "
        f"across ratio {stats.across_ratio:.1%} ==="
    )
    reports = {s: run_trace(s, trace, cfg, sim_cfg) for s in SCHEMES}
    io = normalize({s: r.total_io_ms for s, r in reports.items()})
    er = normalize({s: float(r.erase_count) for s, r in reports.items()})
    rows = {
        s: [reports[s].mean_read_ms, reports[s].mean_write_ms, io[s], er[s]]
        for s in SCHEMES
    }
    print(render_table(
        "results (io/erase normalised to FTL)",
        ["read ms", "write ms", "norm io", "norm erases"],
        rows,
    ))
    return io, er


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", action="append", default=[],
                    help="SYSTOR'17 CSV(.gz) file; repeatable")
    ap.add_argument("--scale", type=float, default=0.01,
                    help="request-count scale for the synthetic presets")
    ap.add_argument("--luns", type=int, default=3,
                    help="how many synthetic lun presets to replay")
    args = ap.parse_args()

    cfg = SSDConfig.bench_default()
    sim_cfg = SimConfig(aged_used=0.9, aged_valid=0.398)
    print(cfg.summary())

    if args.trace:
        traces = [
            load_systor(p).clamped_to(int(cfg.logical_sectors * 0.8))
            for p in args.trace
        ]
    else:
        traces = lun_traces(cfg, scale=args.scale)[: args.luns]
        print(f"(synthetic presets calibrated to paper Table 2, "
              f"scale {args.scale:g})")

    gains = []
    for trace in traces:
        io, _ = replay(trace, cfg, sim_cfg)
        gains.append(1 - io["across"])
    print(f"\nAcross-FTL mean overall I/O-time reduction: "
          f"{sum(gains) / len(gains):.1%} (paper: 8.4% average)")


if __name__ == "__main__":
    main()
