#!/usr/bin/env python
"""Power-loss recovery demo (library extension).

DRAM mapping tables vanish on power loss; a real FTL rebuilds them by
scanning the out-of-band records of every valid flash page.  This demo
runs a VDI workload under Across-FTL, "pulls the plug" (wipes the PMT,
the across-page mapping table and the AIdx references), rebuilds from
flash, and proves both the table state and the user data survive —
including the re-aligned across-page areas.

Run:  python examples/power_loss_recovery.py [--requests N]
"""

from __future__ import annotations

import argparse
import time

from repro import (
    SimConfig,
    SSDConfig,
    SyntheticSpec,
    generate_trace,
    make_ftl,
    Simulator,
)
from repro.flash.service import FlashService


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--requests", type=int, default=6_000)
    args = ap.parse_args()

    cfg = SSDConfig.bench_default()
    service = FlashService(cfg)
    ftl = make_ftl("across", service, track_payload=True)
    sim = Simulator(ftl, SimConfig(check_oracle=True))

    spec = SyntheticSpec(
        name="recovery",
        requests=args.requests,
        write_ratio=0.7,
        across_ratio=0.25,
        mean_write_kb=9.0,
        footprint_sectors=int(cfg.logical_sectors * 0.5),
        seed=17,
    )
    trace = generate_trace(spec)
    sim.run(trace)
    print(cfg.summary())
    print(
        f"\nworkload done: {len(trace)} requests, "
        f"{int((ftl.pmt >= 0).sum())} mapped pages, "
        f"{len(ftl.amt)} live across-page areas, "
        f"oracle verified {sim.oracle.reads_verified} reads"
    )

    # --- power loss: all DRAM state gone -----------------------------
    mapped_before = int((ftl.pmt >= 0).sum())
    areas_before = {
        e.aidx: (e.start, e.size, e.appn) for e in ftl.amt.entries()
    }
    ftl.pmt.fill(-1)
    ftl.pmt_mask.fill(0)
    ftl.amt.clear()
    ftl.aidx_of_lpn.clear()
    ftl._map_ppn.clear()
    print("\n*** power loss: PMT, AMT and AIdx references wiped ***")

    t0 = time.perf_counter()
    scanned = ftl.rebuild_from_flash()
    dt = time.perf_counter() - t0
    areas_after = {
        e.aidx: (e.start, e.size, e.appn) for e in ftl.amt.entries()
    }
    print(
        f"rebuild: scanned {scanned} valid pages in {dt:.2f}s -> "
        f"{int((ftl.pmt >= 0).sum())} mapped pages, "
        f"{len(ftl.amt)} across-page areas"
    )
    assert int((ftl.pmt >= 0).sum()) == mapped_before
    assert areas_after == areas_before
    ftl.check_invariants()

    # every sector the oracle knows must read back with its newest stamp
    checked = 0
    for sec, stamp in list(sim.oracle._versions.items())[::17]:
        _, found = ftl.read(sec, 1, 0.0)
        assert found.get(sec) == stamp, sec
        checked += 1
    print(
        f"verified {checked} sampled sectors return their newest version "
        "after recovery — tables and data intact"
    )


if __name__ == "__main__":
    main()
