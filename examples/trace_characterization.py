#!/usr/bin/env python
"""Characterise block traces: the Table 2 / Fig. 2 / Fig. 13 metrics
for your own trace files or for the built-in synthetic collection.

With no arguments, characterises a generated 12-trace VDI collection
(a small Fig. 2).  Point it at real SYSTOR'17 or MSR files to get the
same report for production workloads:

    python examples/trace_characterization.py lun0.csv.gz --format systor
    python examples/trace_characterization.py prxy_0.csv --format msr
"""

from __future__ import annotations

import argparse

from repro import (
    SSDConfig,
    VDIWorkloadGenerator,
    characterize,
    load_msr,
    load_systor,
    render_table,
    trace_collection,
)

PAGE_SIZES = (4 * 1024, 8 * 1024, 16 * 1024)


def report(traces) -> None:
    rows = {}
    for t in traces:
        st = characterize(t, 8 * 1024)
        per_page = [characterize(t, p).across_ratio for p in PAGE_SIZES]
        rows[t.name] = [
            st.requests,
            f"{st.write_ratio:.1%}",
            f"{st.mean_write_kb:.1f}KB",
            f"{st.unaligned_ratio:.1%}",
            f"{per_page[0]:.1%}",
            f"{per_page[1]:.1%}",
            f"{per_page[2]:.1%}",
        ]
    print(render_table(
        "trace characterisation (Table 2 metrics + Fig. 13 page-size sweep)",
        ["requests", "write R", "write SZ", "unaligned",
         "across@4K", "across@8K", "across@16K"],
        rows,
    ))


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("files", nargs="*", help="trace files to characterise")
    ap.add_argument("--format", choices=("systor", "msr"), default="systor")
    ap.add_argument("--count", type=int, default=12,
                    help="synthetic collection size when no files given")
    args = ap.parse_args()

    if args.files:
        loader = load_systor if args.format == "systor" else load_msr
        traces = [loader(p) for p in args.files]
    else:
        cfg = SSDConfig.bench_default()
        specs = trace_collection(
            args.count,
            footprint_sectors=int(cfg.logical_sectors * 0.8),
            requests=4_000,
        )
        traces = [VDIWorkloadGenerator(s).generate() for s in specs]
        print(f"(synthetic collection of {args.count} VDI-like traces)\n")

    report(traces)
    ratios = [characterize(t, 8 * 1024).across_ratio for t in traces]
    print(
        f"\nacross-page share at 8 KiB: mean {sum(ratios) / len(ratios):.1%}, "
        f"max {max(ratios):.1%} — the paper's Fig. 2 observation that "
        "across-page access is common in VDI workloads"
    )


if __name__ == "__main__":
    main()
