#!/usr/bin/env python
"""Page-size case study (paper §4.3): how the across-page ratio and
Across-FTL's advantage change with 4/8/16 KiB flash pages.

The paper's key claim: the benefit does not fade as pages grow — it
tracks the across-page ratio of the workload.

Run:  python examples/page_size_study.py [--requests N]
"""

from __future__ import annotations

import argparse

from repro import (
    SimConfig,
    SSDConfig,
    SyntheticSpec,
    across_page_ratio,
    generate_trace,
    normalize,
    render_table,
    run_trace,
)

PAGE_SIZES = (4 * 1024, 8 * 1024, 16 * 1024)


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--requests", type=int, default=8_000)
    ap.add_argument("--seed", type=int, default=7)
    args = ap.parse_args()

    base = SSDConfig.bench_default()
    spec = SyntheticSpec(
        name="pagestudy",
        requests=args.requests,
        write_ratio=0.55,
        across_ratio=0.24,
        mean_write_kb=9.0,
        footprint_sectors=int(base.logical_sectors * 0.8),
        seed=args.seed,
    )
    trace = generate_trace(spec)
    sim_cfg = SimConfig(aged_used=0.9, aged_valid=0.398)

    ratio_rows = {}
    io_rows = {}
    erase_rows = {}
    for page in PAGE_SIZES:
        label = f"{page // 1024}KB"
        cfg = base.with_page_size(page)
        ratio_rows[label] = [across_page_ratio(trace, page)]
        reports = {
            s: run_trace(s, trace, cfg, sim_cfg)
            for s in ("ftl", "mrsm", "across")
        }
        io = normalize({s: r.total_io_ms for s, r in reports.items()})
        er = normalize({s: float(r.erase_count) for s, r in reports.items()})
        io_rows[label] = [io["ftl"], io["mrsm"], io["across"]]
        erase_rows[label] = [er["ftl"], er["mrsm"], er["across"]]

    print(render_table(
        "Fig. 13 analogue — across-page ratio vs page size",
        ["across ratio"], ratio_rows,
    ))
    print()
    print(render_table(
        "Fig. 14a analogue — normalised I/O time",
        ["ftl", "mrsm", "across"], io_rows,
    ))
    print()
    print(render_table(
        "Fig. 14b analogue — normalised erase count",
        ["ftl", "mrsm", "across"], erase_rows,
    ))
    print(
        "\nNote how the across-page ratio falls with larger pages while "
        "Across-FTL keeps winning at every size (paper §4.3)."
    )


if __name__ == "__main__":
    main()
